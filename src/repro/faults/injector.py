"""Deterministic fault injection driven by a declarative plan.

The :class:`FaultInjector` is the runtime half of the fault subsystem:
it answers per-round questions the training loop asks (is this client
up?  how slow is it?  does this upload get corrupted?  is its link in a
loss burst?) from a :class:`~repro.faults.models.FaultPlan`, using
independent named RNG streams derived from the plan seed.  Stochastic
per-round draws (corruption) come from per-``(client, round)``
substreams, so the answers are independent of call order; sequential
state (burst channels, batteries) advances only through well-defined
hooks the loop calls in deterministic order.  Same plan + same seed ⇒
bit-identical fault history.

Every injected fault emits a ``fault.injected`` event and increments
the ``fault.injected{kind=...}`` counter on the attached observer.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.faults.models import (
    BatteryFault,
    BurstLossFault,
    CorruptionFault,
    CrashFault,
    FaultPlan,
    GilbertElliottModel,
    StragglerFault,
    substream,
)
from repro.iot.battery import Battery, BatteryConfig
from repro.obs.observer import active_or_none

if TYPE_CHECKING:
    from repro.obs.observer import Observer

__all__ = ["FaultInjector"]


class FaultInjector:
    """Turns a :class:`FaultPlan` into per-round fault decisions.

    Args:
        plan: the declarative fault plan.
        n_clients: size of the client population the plan applies to
            (faults targeting ids outside ``[0, n_clients)`` are
            rejected — a plan written for a larger testbed is a bug,
            not a silent no-op).
        observer: optional telemetry sink for ``fault.injected`` events.
    """

    def __init__(
        self,
        plan: FaultPlan,
        n_clients: int,
        observer: "Observer | None" = None,
    ) -> None:
        if n_clients < 1:
            raise ValueError(f"n_clients must be >= 1; got {n_clients}")
        if plan.max_client_id >= n_clients:
            raise ValueError(
                f"plan targets client {plan.max_client_id} but the "
                f"population has only {n_clients} clients"
            )
        self.plan = plan
        self.n_clients = n_clients
        self._observer = active_or_none(observer)
        self._crashes: dict[int, list[CrashFault]] = {}
        self._stragglers: dict[int, list[StragglerFault]] = {}
        self._corruptions: dict[int, list[CorruptionFault]] = {}
        self._burst_faults: dict[int, BurstLossFault] = {}
        self._channels: dict[int, GilbertElliottModel] = {}
        self._channel_rngs: dict[int, np.random.Generator] = {}
        self._batteries: dict[int, Battery] = {}
        self._battery_faults: dict[int, BatteryFault] = {}
        self._dead_since: dict[int, int] = {}
        for fault in plan:
            cid = fault.client_id
            if isinstance(fault, CrashFault):
                self._crashes.setdefault(cid, []).append(fault)
            elif isinstance(fault, StragglerFault):
                self._stragglers.setdefault(cid, []).append(fault)
            elif isinstance(fault, CorruptionFault):
                self._corruptions.setdefault(cid, []).append(fault)
            elif isinstance(fault, BurstLossFault):
                if cid in self._burst_faults:
                    raise ValueError(
                        f"client {cid} has more than one burst-loss fault"
                    )
                self._burst_faults[cid] = fault
                self._channels[cid] = fault.build_model()
                self._channel_rngs[cid] = substream(plan.seed, "channel", cid)
            elif isinstance(fault, BatteryFault):
                if cid in self._batteries:
                    raise ValueError(
                        f"client {cid} has more than one battery fault"
                    )
                battery = Battery(BatteryConfig(capacity_j=fault.capacity_j))
                if fault.initial_fraction < 1.0:
                    battery.draw(
                        battery.remaining_j * (1.0 - fault.initial_fraction)
                    )
                self._batteries[cid] = battery
                self._battery_faults[cid] = fault

    # ------------------------------------------------------------------
    # Availability (crashes + depleted batteries).
    # ------------------------------------------------------------------
    def available(self, client_id: int, round_index: int) -> bool:
        """Whether ``client_id`` can participate in ``round_index``."""
        for fault in self._crashes.get(client_id, ()):
            if fault.active(round_index):
                return False
        dead_since = self._dead_since.get(client_id)
        return dead_since is None or round_index < dead_since

    def crashed(self, client_id: int, round_index: int) -> bool:
        """Inverse of :meth:`available`, emitting the fault event."""
        if self.available(client_id, round_index):
            return False
        kind = (
            "battery"
            if client_id in self._dead_since
            and not any(
                f.active(round_index) for f in self._crashes.get(client_id, ())
            )
            else "crash"
        )
        self._record(kind, client_id, round_index)
        return True

    # ------------------------------------------------------------------
    # Stragglers.
    # ------------------------------------------------------------------
    def slowdown(self, client_id: int, round_index: int) -> float:
        """Multiplier on the client's training time this round (>= 1)."""
        factor = 1.0
        for fault in self._stragglers.get(client_id, ()):
            if fault.active(round_index):
                factor = max(factor, fault.slowdown)
        if factor > 1.0:
            self._record("straggler", client_id, round_index, slowdown=factor)
        return factor

    # ------------------------------------------------------------------
    # Corrupted uploads.
    # ------------------------------------------------------------------
    def corrupts(self, client_id: int, round_index: int) -> CorruptionFault | None:
        """The corruption fault striking this upload, if any.

        The draw comes from a per-``(client, round)`` substream, so the
        answer does not depend on how many other random decisions were
        made earlier in the round.
        """
        for fault in self._corruptions.get(client_id, ()):
            if not fault.active(round_index):
                continue
            if fault.probability >= 1.0 or (
                substream(self.plan.seed, "corrupt", client_id, round_index).random()
                < fault.probability
            ):
                self._record(
                    "corruption", client_id, round_index, mode=fault.mode
                )
                return fault
        return None

    @staticmethod
    def corrupt_payload(
        parameters: np.ndarray, fault: CorruptionFault
    ) -> np.ndarray:
        """A non-finite copy of ``parameters`` per the fault's mode."""
        corrupted = np.array(parameters, dtype=float, copy=True)
        corrupted[:] = np.nan if fault.mode == "nan" else np.inf
        return corrupted

    # ------------------------------------------------------------------
    # Bursty links.
    # ------------------------------------------------------------------
    def upload_loss_model(
        self, client_id: int, round_index: int
    ) -> GilbertElliottModel | None:
        """The client's burst-loss channel, if active this round."""
        fault = self._burst_faults.get(client_id)
        if fault is None or not fault.active(round_index):
            return None
        return self._channels[client_id]

    def channel_rng(self, client_id: int) -> np.random.Generator:
        """The dedicated RNG stream of one client's burst channel."""
        rng = self._channel_rngs.get(client_id)
        if rng is None:
            raise KeyError(f"client {client_id} has no burst-loss fault")
        return rng

    def record_burst_loss(
        self, client_id: int, round_index: int, lost_attempts: int
    ) -> None:
        """Report attempts the burst channel ate (for telemetry only)."""
        if lost_attempts > 0:
            self._record(
                "burst_loss", client_id, round_index, lost_attempts=lost_attempts
            )

    # ------------------------------------------------------------------
    # Batteries.
    # ------------------------------------------------------------------
    def battery(self, client_id: int) -> Battery | None:
        """The client's battery, when one is declared."""
        return self._batteries.get(client_id)

    def note_participation(
        self,
        client_id: int,
        round_index: int,
        energy_j: float | None = None,
    ) -> None:
        """Drain the client's battery for one round of work.

        ``energy_j`` is the measured round energy when a hardware
        substrate is attached; without one, the fault's nominal
        ``per_round_j`` applies.  A draw that empties the battery kills
        the client from the *next* round onward (it dies uploading, as
        the battery model specifies).
        """
        battery = self._batteries.get(client_id)
        if battery is None or battery.depleted:
            return
        fault = self._battery_faults[client_id]
        draw = energy_j if energy_j is not None else fault.per_round_j
        if draw is None or draw <= 0.0:
            return
        if not battery.draw(draw) or battery.depleted:
            self._dead_since[client_id] = round_index + 1
            self._record(
                "battery_depleted",
                client_id,
                round_index,
                remaining_j=battery.remaining_j,
            )

    # ------------------------------------------------------------------
    # Telemetry.
    # ------------------------------------------------------------------
    def _record(
        self, kind: str, client_id: int, round_index: int, **fields: object
    ) -> None:
        if self._observer is None:
            return
        self._observer.counter("fault.injected", kind=kind).inc()
        self._observer.emit(
            "fault.injected",
            kind=kind,
            client=int(client_id),
            round=int(round_index),
            **fields,
        )
