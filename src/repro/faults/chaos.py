"""Process-level chaos harness: deterministic saboteurs for campaign units.

:mod:`repro.faults.models` injects faults *inside* a federated round —
clients crash, uploads corrupt, batteries die — but the campaign layer
has its own failure surface: whole worker *processes* segfault, hang,
get OOM-killed, or tear artifact writes.  This module provides the
deterministic saboteurs the ``chaos_smoke`` acceptance suite drives
through the supervised campaign runtime:

* ``crash`` — raise :class:`ChaosError` for the first N attempts, then
  let the unit succeed (models a transient failure a retry absorbs);
* ``hang`` — sleep instead of training, so only the watchdog's deadline
  or heartbeat-staleness detection can reclaim the worker;
* ``kill`` — ``SIGKILL`` the worker's own process mid-unit (models a
  segfault or the kernel OOM killer: no exception, no cleanup, the
  executor's pool breaks);
* ``corrupt`` — flip bytes in a written artifact after the store
  recorded its checksum (models a torn write; caught by the runner's
  verify-after-write pass);
* ``interrupt`` — raise :class:`KeyboardInterrupt`, simulating Ctrl-C
  landing mid-unit (the hook the killed-mid-retry resume test uses).

Saboteurs are pure functions of ``(unit name match, attempt number)``:
given the same plan and the same attempt sequence they misbehave
identically, which is what lets chaos tests assert byte-identical
artifacts and exact attempt counts across interrupted and uninterrupted
runs.
"""

from __future__ import annotations

import json
import os
import signal
import time
from dataclasses import dataclass

__all__ = ["ChaosError", "Saboteur", "ChaosPlan"]

_KINDS = ("crash", "hang", "kill", "corrupt", "interrupt")

# Deterministic garbage for "corrupt": recognisable in a hex dump and a
# guaranteed checksum mismatch against any JSON artifact.
_CORRUPT_BYTES = b"\x00CHAOS\x00"


class ChaosError(RuntimeError):
    """A saboteur deliberately crashed a campaign unit."""


@dataclass(frozen=True)
class Saboteur:
    """One deterministic misbehaviour, applied per unit attempt.

    Attributes:
        kind: ``crash`` | ``hang`` | ``kill`` | ``corrupt`` |
            ``interrupt``.
        times: act on attempts ``0 .. times-1``; ``-1`` means every
            attempt (an unrecoverable unit).
        hang_s: how long a ``hang`` sleeps.  A safety bound, not a
            behaviour knob — set it above the watchdog deadline under
            test but low enough that a broken watchdog fails the test
            instead of wedging the suite.
    """

    kind: str
    times: int = 1
    hang_s: float = 60.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown saboteur kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.times < -1:
            raise ValueError(f"times must be >= -1; got {self.times}")
        if self.hang_s <= 0:
            raise ValueError(f"hang_s must be positive; got {self.hang_s}")

    def should_act(self, attempt: int) -> bool:
        """Whether this saboteur misbehaves on ``attempt`` (0-based)."""
        if self.times < 0:
            return True
        return attempt < self.times

    def on_start(self, attempt: int) -> None:
        """Pre-training sabotage: crash, hang, kill, or interrupt."""
        if not self.should_act(attempt):
            return
        if self.kind == "crash":
            raise ChaosError(
                f"chaos: deliberate crash on attempt {attempt}"
            )
        if self.kind == "interrupt":
            raise KeyboardInterrupt(
                f"chaos: deliberate interrupt on attempt {attempt}"
            )
        if self.kind == "hang":
            # Sleep in small slices so a SIGTERM-converted interrupt can
            # still unwind this frame; SIGKILL needs no cooperation.
            deadline = time.monotonic() + self.hang_s
            while time.monotonic() < deadline:
                time.sleep(0.1)
            raise ChaosError(
                f"chaos: hang survived {self.hang_s}s without being killed"
            )
        if self.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)

    def corrupt_artifacts(self, unit_dir, attempt: int) -> None:
        """Post-write sabotage: tear bytes in the recorded history file."""
        if self.kind != "corrupt" or not self.should_act(attempt):
            return
        target = unit_dir / "history.json"
        if not target.exists():  # pragma: no cover - defensive
            return
        data = bytearray(target.read_bytes())
        garbage = (_CORRUPT_BYTES * (len(data) // len(_CORRUPT_BYTES) + 1))[
            : min(len(data), 64)
        ]
        data[: len(garbage)] = garbage
        target.write_bytes(bytes(data))

    def to_dict(self) -> dict:
        """Plain-type dict form; inverse of :meth:`from_dict`."""
        return {
            "kind": self.kind,
            "times": int(self.times),
            "hang_s": float(self.hang_s),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Saboteur":
        """Rebuild a saboteur from :meth:`to_dict` output."""
        try:
            return cls(
                kind=str(data["kind"]),
                times=int(data.get("times", 1)),
                hang_s=float(data.get("hang_s", 60.0)),
            )
        except (KeyError, TypeError) as error:
            raise ValueError(f"malformed saboteur {data!r}: {error}") from None


@dataclass(frozen=True)
class ChaosPlan:
    """Deterministic assignment of saboteurs to campaign units.

    Units are matched by *name substring* — campaign unit names embed
    their grid coordinates (``K2-E4-s0`` …), so a token like ``"K2-E4"``
    pins a saboteur to exactly one grid cell without hard-coding content
    keys.  The first matching token (in declaration order) wins.
    """

    saboteurs: tuple[tuple[str, Saboteur], ...] = ()

    @classmethod
    def build(cls, mapping: dict[str, Saboteur]) -> "ChaosPlan":
        """Plan from a ``{name-token: saboteur}`` mapping."""
        return cls(saboteurs=tuple(mapping.items()))

    def saboteur_for(self, unit_name: str) -> Saboteur | None:
        """The saboteur assigned to ``unit_name``, or ``None``."""
        for token, saboteur in self.saboteurs:
            if token in unit_name:
                return saboteur
        return None

    def to_dict(self) -> dict:
        """Plain-type dict form; inverse of :meth:`from_dict`."""
        return {
            "saboteurs": [
                {"match": token, **saboteur.to_dict()}
                for token, saboteur in self.saboteurs
            ]
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosPlan":
        """Rebuild a plan from :meth:`to_dict` output."""
        try:
            entries = data["saboteurs"]
        except (KeyError, TypeError) as error:
            raise ValueError(f"malformed chaos plan {data!r}: {error}") from None
        saboteurs = []
        for entry in entries:
            if "match" not in entry:
                raise ValueError(f"chaos entry missing 'match': {entry!r}")
            saboteurs.append((str(entry["match"]), Saboteur.from_dict(entry)))
        return cls(saboteurs=tuple(saboteurs))

    def to_json(self, indent: int | None = None) -> str:
        """JSON form; inverse of :meth:`from_json`."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ChaosPlan":
        """Rebuild a plan from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))
