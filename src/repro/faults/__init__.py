"""Fault injection and resilience for the federated round pipeline.

The paper's prototype assumes a reliable WiFi link and always-on edge
servers; this package is the controlled departure from that assumption,
in two halves:

* **Fault models** (:mod:`repro.faults.models`,
  :mod:`repro.faults.injector`): a declarative, JSON-serialisable
  :class:`FaultPlan` (crashes, stragglers, Gilbert–Elliott burst loss,
  battery depletion, corrupted uploads) executed deterministically by a
  seeded :class:`FaultInjector`.
* **Resilience policies** (:mod:`repro.faults.policies`): retry with
  capped exponential backoff and deterministic jitter, per-upload
  timeouts, round deadlines with partial aggregation, minimum quorum
  with graceful degradation, and crash resampling — consumed by
  :class:`repro.fl.training.FederatedTrainer` via a
  :class:`ResilienceConfig`.
* **Process-level chaos** (:mod:`repro.faults.chaos`): deterministic
  saboteurs (crash-N-times-then-succeed, hang, SIGKILL, torn artifact
  writes) that the ``chaos_smoke`` suite drives through the supervised
  campaign runtime to prove retries, watchdog kills, pool rebuilds and
  quarantine all work end-to-end.

Every injected fault and every recovery action is observable (the
``fault.injected``, ``fl.retries``, ``fl.rounds_degraded`` and
``energy.wasted_j`` instruments), and the hardware substrate prices
failures in joules at the measured upload/waiting powers so the energy
objective reflects what failures actually cost.
"""

from repro.faults.chaos import ChaosError, ChaosPlan, Saboteur
from repro.faults.injector import FaultInjector
from repro.faults.models import (
    BatteryFault,
    BurstLossFault,
    CorruptionFault,
    CrashFault,
    FaultPlan,
    GilbertElliottModel,
    StragglerFault,
    make_demo_plan,
    substream,
)
from repro.faults.policies import (
    ResilienceConfig,
    RetryPolicy,
    RoundResilienceReport,
    UploadOutcome,
    simulate_upload,
)

__all__ = [
    "BatteryFault",
    "BurstLossFault",
    "ChaosError",
    "ChaosPlan",
    "CorruptionFault",
    "CrashFault",
    "FaultInjector",
    "FaultPlan",
    "GilbertElliottModel",
    "ResilienceConfig",
    "RetryPolicy",
    "RoundResilienceReport",
    "Saboteur",
    "StragglerFault",
    "UploadOutcome",
    "make_demo_plan",
    "simulate_upload",
    "substream",
]
