"""Resilience policies: how the round pipeline survives injected faults.

Production FL is defined by what happens when uploads fail: this module
provides the *policy* side of the fault subsystem — capped exponential
backoff with deterministic jitter (:class:`RetryPolicy`), the bundle of
knobs a :class:`~repro.fl.training.FederatedTrainer` consumes
(:class:`ResilienceConfig`: per-upload timeout, round deadline with
partial aggregation, minimum quorum, crash resampling, non-finite
rejection), the simulated upload state machine (:func:`simulate_upload`)
and the per-round :class:`RoundResilienceReport` the energy substrate
prices (every retry transmits at the measured 5.015 W upload power and
every backoff waits at the 3.600 W waiting power, so failure cost shows
up in the Fig. 6-style energy objective).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:
    from repro.net.channel import WirelessChannel

__all__ = [
    "RetryPolicy",
    "ResilienceConfig",
    "UploadOutcome",
    "simulate_upload",
    "RoundResilienceReport",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic jitter.

    The ``i``-th retry waits ``base * factor**i`` seconds, capped at
    ``max_backoff_s``, then multiplied by a jitter factor drawn from the
    caller's seeded RNG stream (uniform in ``1 ± jitter_fraction``) —
    jitter decorrelates simultaneous retries without sacrificing run
    reproducibility.
    """

    max_retries: int = 3
    base_backoff_s: float = 0.1
    backoff_factor: float = 2.0
    max_backoff_s: float = 2.0
    jitter_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0; got {self.max_retries}")
        if self.base_backoff_s < 0:
            raise ValueError(
                f"base_backoff_s must be non-negative; got {self.base_backoff_s}"
            )
        if self.backoff_factor < 1.0:
            raise ValueError(
                f"backoff_factor must be >= 1; got {self.backoff_factor}"
            )
        if self.max_backoff_s < self.base_backoff_s:
            raise ValueError(
                "max_backoff_s must be >= base_backoff_s; "
                f"got {self.max_backoff_s} < {self.base_backoff_s}"
            )
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ValueError(
                f"jitter_fraction must be in [0, 1); got {self.jitter_fraction}"
            )

    def backoff_s(
        self, retry_index: int, rng: np.random.Generator | None = None
    ) -> float:
        """Wait before retry ``retry_index`` (0-based), jittered."""
        if retry_index < 0:
            raise ValueError(f"retry_index must be >= 0; got {retry_index}")
        raw = min(
            self.base_backoff_s * self.backoff_factor**retry_index,
            self.max_backoff_s,
        )
        if rng is not None and self.jitter_fraction > 0:
            raw *= 1.0 + self.jitter_fraction * (2.0 * rng.random() - 1.0)
        return raw

    def to_dict(self) -> dict:
        """Plain-type dict form; inverse of :meth:`from_dict`."""
        return {
            "max_retries": int(self.max_retries),
            "base_backoff_s": float(self.base_backoff_s),
            "backoff_factor": float(self.backoff_factor),
            "max_backoff_s": float(self.max_backoff_s),
            "jitter_fraction": float(self.jitter_fraction),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        """Rebuild a policy from :meth:`to_dict` output."""
        try:
            return cls(
                max_retries=int(data["max_retries"]),
                base_backoff_s=float(data["base_backoff_s"]),
                backoff_factor=float(data["backoff_factor"]),
                max_backoff_s=float(data["max_backoff_s"]),
                jitter_fraction=float(data["jitter_fraction"]),
            )
        except (KeyError, TypeError) as error:
            raise ValueError(
                f"malformed retry policy {data!r}: {error}"
            ) from None


@dataclass(frozen=True)
class ResilienceConfig:
    """Every resilience knob of one federated training run.

    Attributes:
        retry: backoff policy for failed upload attempts.
        upload_timeout_s: total simulated-time budget for one client's
            upload (attempts + backoffs); ``None`` = no timeout, the
            retry cap alone bounds attempts.
        round_deadline_s: round-level deadline: clients whose simulated
            completion time (training × slowdown + upload) exceeds it
            are excluded from aggregation (partial aggregation).
            ``None`` disables the deadline.
        min_quorum: aggregate only when at least this many survivor
            updates arrived; otherwise the round is *degraded* — the
            last good model is carried forward via
            :meth:`repro.fl.server.Coordinator.skip_round`.
        resample_crashed: replace clients that are down at selection
            time with deterministically resampled available ones.
        reject_nonfinite: drop non-finite (NaN/Inf) updates before they
            reach the aggregator.
        nominal_train_s: per-epoch nominal compute time assumed for
            deadline checks when no hardware timing model is attached
            (the prototype substitutes its measured timing law).
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    upload_timeout_s: float | None = None
    round_deadline_s: float | None = None
    min_quorum: int = 1
    resample_crashed: bool = True
    reject_nonfinite: bool = True
    nominal_train_s: float = 1.0

    def __post_init__(self) -> None:
        if self.upload_timeout_s is not None and self.upload_timeout_s <= 0:
            raise ValueError(
                f"upload_timeout_s must be positive; got {self.upload_timeout_s}"
            )
        if self.round_deadline_s is not None and self.round_deadline_s <= 0:
            raise ValueError(
                f"round_deadline_s must be positive; got {self.round_deadline_s}"
            )
        if self.min_quorum < 1:
            raise ValueError(f"min_quorum must be >= 1; got {self.min_quorum}")
        if self.nominal_train_s < 0:
            raise ValueError(
                f"nominal_train_s must be non-negative; got {self.nominal_train_s}"
            )

    def to_dict(self) -> dict:
        """Plain-type dict form; inverse of :meth:`from_dict`.

        The shape is embedded verbatim in :class:`repro.campaign.RunSpec`
        documents, so campaign artifacts capture the exact resilience
        policy a run used.
        """
        return {
            "retry": self.retry.to_dict(),
            "upload_timeout_s": (
                None
                if self.upload_timeout_s is None
                else float(self.upload_timeout_s)
            ),
            "round_deadline_s": (
                None
                if self.round_deadline_s is None
                else float(self.round_deadline_s)
            ),
            "min_quorum": int(self.min_quorum),
            "resample_crashed": bool(self.resample_crashed),
            "reject_nonfinite": bool(self.reject_nonfinite),
            "nominal_train_s": float(self.nominal_train_s),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ResilienceConfig":
        """Rebuild a config from :meth:`to_dict` output."""
        try:
            return cls(
                retry=RetryPolicy.from_dict(data["retry"]),
                upload_timeout_s=(
                    None
                    if data["upload_timeout_s"] is None
                    else float(data["upload_timeout_s"])
                ),
                round_deadline_s=(
                    None
                    if data["round_deadline_s"] is None
                    else float(data["round_deadline_s"])
                ),
                min_quorum=int(data["min_quorum"]),
                resample_crashed=bool(data["resample_crashed"]),
                reject_nonfinite=bool(data["reject_nonfinite"]),
                nominal_train_s=float(data["nominal_train_s"]),
            )
        except (KeyError, TypeError) as error:
            raise ValueError(
                f"malformed resilience config {data!r}: {error}"
            ) from None


@dataclass(frozen=True)
class UploadOutcome:
    """Result of one simulated, possibly retried, upload.

    Attributes:
        delivered: the payload reached the coordinator.
        attempts: transfer attempts actually transmitted (each burns
            upload-power energy for its duration).
        transfer_s: total time spent transmitting, over all attempts.
        backoff_s: total time spent waiting between attempts (burns
            waiting-power energy).
        timed_out: gave up because the upload-timeout budget ran out
            (as opposed to exhausting the retry cap).
    """

    delivered: bool
    attempts: int
    transfer_s: float
    backoff_s: float
    timed_out: bool = False

    @property
    def total_s(self) -> float:
        """Wall time the upload occupied (transmit + backoff)."""
        return self.transfer_s + self.backoff_s

    @property
    def retries(self) -> int:
        """Attempts beyond the first."""
        return max(0, self.attempts - 1)


def simulate_upload(
    channel: "WirelessChannel",
    n_bytes: int,
    policy: RetryPolicy,
    rng: np.random.Generator,
    timeout_s: float | None = None,
    attempt_lost: Callable[[], bool] | None = None,
) -> UploadOutcome:
    """Simulate one upload over a lossy channel under a retry policy.

    Each attempt takes :meth:`WirelessChannel.attempt_duration` seconds
    and is lost either per ``attempt_lost`` (e.g. a Gilbert–Elliott
    burst model bound to its own RNG stream) or per the channel config's
    Bernoulli loss.  Lost attempts back off per ``policy`` using ``rng``
    for deterministic jitter.  The upload fails when the retry cap is
    exhausted or when starting the next attempt would exceed the total
    ``timeout_s`` budget.
    """
    if n_bytes < 0:
        raise ValueError(f"n_bytes must be non-negative; got {n_bytes}")
    attempt_s = channel.attempt_duration(n_bytes)
    loss_p = channel.config.loss_probability

    def lost() -> bool:
        if attempt_lost is not None:
            return attempt_lost()
        return loss_p > 0 and rng.random() < loss_p

    transfer_s = 0.0
    backoff_s = 0.0
    attempts = 0
    while attempts <= policy.max_retries:
        if timeout_s is not None and transfer_s + backoff_s + attempt_s > timeout_s:
            return UploadOutcome(
                delivered=False,
                attempts=attempts,
                transfer_s=transfer_s,
                backoff_s=backoff_s,
                timed_out=True,
            )
        attempts += 1
        transfer_s += attempt_s
        if not lost():
            return UploadOutcome(
                delivered=True,
                attempts=attempts,
                transfer_s=transfer_s,
                backoff_s=backoff_s,
            )
        if attempts <= policy.max_retries:
            backoff_s += policy.backoff_s(attempts - 1, rng)
    return UploadOutcome(
        delivered=False,
        attempts=attempts,
        transfer_s=transfer_s,
        backoff_s=backoff_s,
    )


@dataclass(frozen=True)
class RoundResilienceReport:
    """Everything that went wrong (and was survived) in one round.

    Produced by the trainer whenever resilience is enabled; the hardware
    substrate prices it into joules (retry transmissions at upload
    power, backoffs at waiting power, futile work of failed clients)
    and the ``energy.wasted_j`` counter.
    """

    round_index: int
    selected: tuple[int, ...]
    crashed: tuple[int, ...] = ()
    replacements: tuple[int, ...] = ()
    slowdowns: dict[int, float] = field(default_factory=dict)
    upload_attempts: dict[int, int] = field(default_factory=dict)
    backoff_s: dict[int, float] = field(default_factory=dict)
    failed_uploads: tuple[int, ...] = ()
    corrupted: tuple[int, ...] = ()
    late: tuple[int, ...] = ()
    degraded: bool = False
    quorum: int = 1
    n_aggregated: int = 0

    @property
    def retries(self) -> int:
        """Total retry attempts across the round's uploads."""
        return sum(max(0, a - 1) for a in self.upload_attempts.values())

    @property
    def total_backoff_s(self) -> float:
        """Total backoff wait across the round's uploads."""
        return float(sum(self.backoff_s.values()))

    def to_dict(self) -> dict:
        """Plain-type dict form for telemetry payloads."""
        return {
            "round_index": int(self.round_index),
            "selected": [int(c) for c in self.selected],
            "crashed": [int(c) for c in self.crashed],
            "replacements": [int(c) for c in self.replacements],
            "slowdowns": {int(k): float(v) for k, v in self.slowdowns.items()},
            "upload_attempts": {
                int(k): int(v) for k, v in self.upload_attempts.items()
            },
            "backoff_s": {int(k): float(v) for k, v in self.backoff_s.items()},
            "failed_uploads": [int(c) for c in self.failed_uploads],
            "corrupted": [int(c) for c in self.corrupted],
            "late": [int(c) for c in self.late],
            "degraded": bool(self.degraded),
            "quorum": int(self.quorum),
            "n_aggregated": int(self.n_aggregated),
            "retries": int(self.retries),
        }
