"""Baseline parameter-selection policies EE-FEI is compared against.

The paper's headline result — a 49.8 % energy reduction — is measured
against the naive ``(K = 1, E = 1)`` policy (mini-batch SGD with a single
participant).  This module also provides exhaustive integer grid search
(the gold standard ACS is validated against), random search, and the
single-parameter optimizers representative of prior work the paper cites
(optimising K alone or E alone).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.closed_form import e_star, k_star
from repro.core.objective import EnergyObjective

__all__ = [
    "PolicyResult",
    "fixed_policy",
    "grid_search",
    "random_search",
    "optimize_k_only",
    "optimize_e_only",
]


@dataclass(frozen=True)
class PolicyResult:
    """An integer ``(K, E, T)`` plan with its predicted energy in joules."""

    name: str
    participants: int
    epochs: int
    rounds: int
    energy: float
    evaluations: int = 0

    def savings_vs(self, other: "PolicyResult") -> float:
        """Fractional energy saving of this plan relative to ``other``."""
        if other.energy <= 0:
            raise ValueError("reference energy must be positive")
        return 1.0 - self.energy / other.energy


def _plan(objective: EnergyObjective, name: str, k: int, e: int, evals: int) -> PolicyResult:
    rounds = objective.bound.required_rounds_int(objective.epsilon, e, k)
    return PolicyResult(
        name=name,
        participants=k,
        epochs=e,
        rounds=rounds,
        energy=objective.value_integer(k, e),
        evaluations=evals,
    )


def fixed_policy(
    objective: EnergyObjective, participants: int, epochs: int, name: str | None = None
) -> PolicyResult:
    """Evaluate a fixed ``(K, E)`` choice (e.g. the paper's K=1, E=1 baseline).

    Raises ``ValueError`` if the choice cannot reach the target accuracy.
    """
    if not objective.is_feasible(participants, epochs):
        raise ValueError(
            f"fixed policy (K={participants}, E={epochs}) is infeasible for "
            f"epsilon={objective.epsilon}"
        )
    label = name or f"fixed(K={participants},E={epochs})"
    return _plan(objective, label, participants, epochs, evals=1)


def _max_integer_epochs(objective: EnergyObjective, participants: int, cap: int) -> int:
    """Largest feasible integer E at this K, bounded by ``cap``."""
    hi = objective.bound.max_feasible_epochs(objective.epsilon, participants)
    if math.isinf(hi):
        return cap
    return min(cap, int(math.ceil(hi)) - 1)


def grid_search(
    objective: EnergyObjective, max_epochs: int = 1000
) -> PolicyResult:
    """Exhaustive search over all feasible integer ``(K, E)`` pairs.

    This is the brute-force optimum used to validate ACS.  Complexity is
    ``O(N * max_epochs)`` objective evaluations.
    """
    best: PolicyResult | None = None
    evals = 0
    for k in range(1, objective.n_servers + 1):
        if not objective.is_feasible(k, 1):
            continue
        e_hi = _max_integer_epochs(objective, k, max_epochs)
        for e in range(1, e_hi + 1):
            if not objective.is_feasible(k, e):
                break
            evals += 1
            energy = objective.value_integer(k, e)
            if best is None or energy < best.energy:
                best = PolicyResult("grid-search", k, e, 0, energy)
    if best is None:
        raise ValueError("no feasible integer plan exists")
    return _plan(objective, "grid-search", best.participants, best.epochs, evals)


def random_search(
    objective: EnergyObjective,
    n_trials: int,
    rng: np.random.Generator,
    max_epochs: int = 1000,
) -> PolicyResult:
    """Uniform random sampling of feasible integer ``(K, E)`` pairs."""
    if n_trials < 1:
        raise ValueError(f"n_trials must be >= 1; got {n_trials}")
    best: tuple[int, int, float] | None = None
    evals = 0
    for _ in range(n_trials):
        k = int(rng.integers(1, objective.n_servers + 1))
        e = int(rng.integers(1, max_epochs + 1))
        if not objective.is_feasible(k, e):
            continue
        evals += 1
        energy = objective.value_integer(k, e)
        if best is None or energy < best[2]:
            best = (k, e, energy)
    if best is None:
        raise ValueError(
            f"random search found no feasible plan in {n_trials} trials"
        )
    return _plan(objective, "random-search", best[0], best[1], evals)


def optimize_k_only(
    objective: EnergyObjective, epochs: int = 1
) -> PolicyResult:
    """Single-parameter baseline: closed-form K* at a fixed E.

    Represents prior work that tunes participation alone (paper §I:
    "most of these works focus on optimizing a single parameter").
    """
    k_cont = k_star(objective, epochs)
    candidates = {
        min(max(int(math.floor(k_cont)), 1), objective.n_servers),
        min(max(int(math.ceil(k_cont)), 1), objective.n_servers),
    }
    feasible = [k for k in candidates if objective.is_feasible(k, epochs)]
    if not feasible:
        raise ValueError(f"no feasible integer K near {k_cont} at E={epochs}")
    k_best = min(feasible, key=lambda k: objective.value_integer(k, epochs))
    return _plan(objective, f"K-only(E={epochs})", k_best, epochs, len(feasible))


def optimize_e_only(
    objective: EnergyObjective, participants: int = 1
) -> PolicyResult:
    """Single-parameter baseline: closed-form E* at a fixed K."""
    e_cont = e_star(objective, participants)
    candidates = {max(int(math.floor(e_cont)), 1), max(int(math.ceil(e_cont)), 1)}
    feasible = [e for e in candidates if objective.is_feasible(participants, e)]
    if not feasible:
        raise ValueError(
            f"no feasible integer E near {e_cont} at K={participants}"
        )
    e_best = min(feasible, key=lambda e: objective.value_integer(participants, e))
    return _plan(
        objective, f"E-only(K={participants})", participants, e_best, len(feasible)
    )
