"""A zoo of convergence-bound families — evaluating the paper's §V-A choice.

The paper adopts the Khaled–Mishchenko–Richtárik (KMR) bound and argues
it is the tightest available.  To make that claim testable, this module
implements the functional forms of the alternatives the related-work
section cites, behind one pluggable interface:

* :class:`KMRBoundModel` — eq. (10): ``A0/(TE) + A1/K + A2(E-1)``
  (wraps :class:`repro.core.convergence.ConvergenceBound`).
* :class:`StichBoundModel` — Stich, "Local SGD converges fast and
  communicates little" (ref. [7]): for strongly convex losses,
  ``S0/(K T E) + S1 / T^2`` — variance averaged over *all* ``K T E``
  gradients, plus a divergence term decaying with the square of the
  synchronisation count.
* :class:`KStepBoundModel` — Zhou & Cong's K-step-averaging analysis
  (ref. [6], non-convex rates): ``Z0 / sqrt(T E K) + Z1 (E - 1) / T``.

Every family is linear in its constants, so each can be fitted to the
same pilot observations by non-negative least squares and compared on
held-out operating points (``benchmarks/test_bench_bounds_zoo.py``).
Round-count inversion ``T*(eps, E, K)`` is generic bisection, since only
the KMR family has a closed form.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import nnls

from repro.core.calibration import GapObservation
from repro.core.convergence import ConvergenceBound

__all__ = [
    "ConvergenceModel",
    "KMRBoundModel",
    "StichBoundModel",
    "KStepBoundModel",
    "fit_model",
    "ALL_MODEL_FAMILIES",
]

_MAX_ROUNDS = 1e12


class ConvergenceModel(ABC):
    """A parameterised upper bound on the loss gap after training.

    Subclasses define the *feature map* ``phi(T, E, K)`` so that
    ``gap = theta . phi``; fitting is then shared NNLS machinery.
    """

    #: human-readable family name.
    name: str = "abstract"

    def __init__(self, theta: np.ndarray) -> None:
        theta = np.asarray(theta, dtype=float)
        if theta.shape != (self.n_parameters(),):
            raise ValueError(
                f"{type(self).__name__} needs {self.n_parameters()} "
                f"constants; got shape {theta.shape}"
            )
        if (theta < 0).any():
            raise ValueError("bound constants must be non-negative")
        self.theta = theta

    @classmethod
    @abstractmethod
    def n_parameters(cls) -> int:
        """Number of fitted constants."""

    @staticmethod
    @abstractmethod
    def features(rounds: float, epochs: float, participants: float) -> np.ndarray:
        """The feature vector ``phi(T, E, K)``."""

    # ------------------------------------------------------------------
    # Shared evaluation machinery.
    # ------------------------------------------------------------------
    def loss_gap(self, rounds: float, epochs: float, participants: float) -> float:
        """Evaluate the bound at ``(T, E, K)``."""
        if rounds <= 0 or epochs < 1 or participants < 1:
            raise ValueError(
                f"need T > 0, E >= 1, K >= 1; got ({rounds}, {epochs}, {participants})"
            )
        return float(self.theta @ self.features(rounds, epochs, participants))

    def asymptotic_gap(self, epochs: float, participants: float) -> float:
        """The floor the bound approaches as ``T -> inf``."""
        return self.loss_gap(_MAX_ROUNDS, epochs, participants)

    def is_feasible(self, epsilon: float, epochs: float, participants: float) -> bool:
        """Whether some finite ``T`` achieves the target gap."""
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive; got {epsilon}")
        return self.asymptotic_gap(epochs, participants) < epsilon

    def required_rounds(
        self, epsilon: float, epochs: float, participants: float
    ) -> float:
        """Smallest continuous ``T`` with ``gap <= epsilon`` (bisection).

        Every family is monotone non-increasing in ``T``, so bisection on
        ``[lo, hi]`` with geometric bracket growth is exact to ~1e-9
        relative tolerance.
        """
        if not self.is_feasible(epsilon, epochs, participants):
            raise ValueError(
                f"epsilon={epsilon} unreachable at E={epochs}, K={participants} "
                f"under the {self.name} bound"
            )
        if self.loss_gap(1e-12, epochs, participants) <= epsilon:
            return 1e-12
        lo, hi = 1e-12, 1.0
        while self.loss_gap(hi, epochs, participants) > epsilon:
            lo, hi = hi, hi * 2.0
            if hi > _MAX_ROUNDS:
                raise ValueError("required rounds exceed the search cap")
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self.loss_gap(mid, epochs, participants) > epsilon:
                lo = mid
            else:
                hi = mid
            if hi - lo <= 1e-9 * hi:
                break
        return hi

    def required_rounds_int(
        self, epsilon: float, epochs: float, participants: float
    ) -> int:
        """Integer rounds: ``max(1, ceil(T*))``."""
        return max(1, math.ceil(self.required_rounds(epsilon, epochs, participants)))

    # ------------------------------------------------------------------
    # Fit quality.
    # ------------------------------------------------------------------
    def relative_rmse(self, observations: Sequence[GapObservation]) -> float:
        """Root-mean-square *relative* error over observations."""
        if not observations:
            raise ValueError("need at least one observation")
        errors = []
        for obs in observations:
            predicted = self.loss_gap(obs.rounds, obs.epochs, obs.participants)
            errors.append((predicted - obs.gap) / obs.gap)
        return float(np.sqrt(np.mean(np.square(errors))))


class KMRBoundModel(ConvergenceModel):
    """The paper's bound (eq. (10)), in zoo clothing."""

    name = "KMR (paper)"

    @classmethod
    def n_parameters(cls) -> int:
        return 3

    @staticmethod
    def features(rounds: float, epochs: float, participants: float) -> np.ndarray:
        return np.array(
            [1.0 / (rounds * epochs), 1.0 / participants, epochs - 1.0]
        )

    def to_convergence_bound(self, min_a0: float = 1e-12) -> ConvergenceBound:
        """Convert to the closed-form :class:`ConvergenceBound`."""
        return ConvergenceBound(
            a0=max(float(self.theta[0]), min_a0),
            a1=float(self.theta[1]),
            a2=float(self.theta[2]),
        )


class StichBoundModel(ConvergenceModel):
    """Stich-style local-SGD bound: ``S0/(KTE) + S1/T^2``."""

    name = "Stich local-SGD"

    @classmethod
    def n_parameters(cls) -> int:
        return 2

    @staticmethod
    def features(rounds: float, epochs: float, participants: float) -> np.ndarray:
        return np.array(
            [1.0 / (participants * rounds * epochs), 1.0 / rounds**2]
        )


class KStepBoundModel(ConvergenceModel):
    """K-step-averaging-style bound: ``Z0/sqrt(TEK) + Z1 (E-1)/T``."""

    name = "K-step averaging"

    @classmethod
    def n_parameters(cls) -> int:
        return 2

    @staticmethod
    def features(rounds: float, epochs: float, participants: float) -> np.ndarray:
        return np.array(
            [
                1.0 / math.sqrt(rounds * epochs * participants),
                (epochs - 1.0) / rounds,
            ]
        )


ALL_MODEL_FAMILIES: tuple[type[ConvergenceModel], ...] = (
    KMRBoundModel,
    StichBoundModel,
    KStepBoundModel,
)


def fit_model(
    family: type[ConvergenceModel],
    observations: Sequence[GapObservation],
    weighting: str = "relative",
) -> ConvergenceModel:
    """Fit one bound family to observations by non-negative least squares.

    Args:
        family: the model class to fit.
        observations: measured loss gaps at ``(T, E, K)`` points.
        weighting: ``"relative"`` (rows scaled by ``1/gap``) or
            ``"absolute"`` — same semantics as
            :func:`repro.core.calibration.fit_convergence_constants`.
    """
    if len(observations) < family.n_parameters():
        raise ValueError(
            f"need at least {family.n_parameters()} observations to fit "
            f"{family.__name__}; got {len(observations)}"
        )
    if weighting not in ("relative", "absolute"):
        raise ValueError(
            f"weighting must be 'relative' or 'absolute'; got {weighting!r}"
        )
    design = np.array(
        [family.features(o.rounds, o.epochs, o.participants) for o in observations]
    )
    target = np.array([o.gap for o in observations])
    if weighting == "relative":
        weights = 1.0 / target
        design = design * weights[:, None]
        target = np.ones_like(target)
    theta, _ = nnls(design, target)
    return family(theta)
