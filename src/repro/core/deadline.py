"""Latency-constrained EE-FEI: minimize energy under a round deadline.

The paper minimizes energy alone; edge deployments usually also face a
*latency* budget — the training must finish within ``T <= T_max``
global rounds (each round costs wall-clock time for the slowest
participant).  This extension solves

    min_{K, E}  E_hat(K, E)
    s.t.        T*(K, E) <= T_max,  feasibility (13c),  1 <= K <= N,

which stays tractable because the deadline carves a *convex* sub-region
out of each coordinate slice: ``T*(K, E) <= T_max`` lower-bounds ``E``
at fixed ``K`` (more local work per round compresses rounds) and
lower-bounds ``K`` at fixed ``E``.  The solver reuses the plateau-exact
integer machinery of :mod:`repro.core.acs` restricted to the deadline
region.

The non-iid study (`examples/noniid_study.py`) motivates this: under
label skew the unconstrained optimum ``K* = 1`` needs many times more
rounds, so a deadline shifts the energy-optimal feasible participation
upward.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.acs import ACSSolver
from repro.core.objective import EnergyObjective

__all__ = ["DeadlinePlan", "solve_with_deadline"]


@dataclass(frozen=True)
class DeadlinePlan:
    """An integer schedule satisfying the round deadline.

    Attributes:
        participants / epochs / rounds: the plan.
        energy: predicted energy of the plan in joules.
        deadline: the round budget ``T_max`` that was enforced.
        binding: whether the deadline constraint is active (the
            unconstrained optimum would exceed it).
    """

    participants: int
    epochs: int
    rounds: int
    energy: float
    deadline: int
    binding: bool


def _min_epochs_for_deadline(
    objective: EnergyObjective, participants: int, deadline: int
) -> int | None:
    """Smallest feasible integer E at this K with ``T*(K, E) <= T_max``.

    Delegates to the plateau boundary of the ACS solver, which solves
    exactly this equation.
    """
    solver = ACSSolver(objective)
    return solver._min_epochs_for_rounds(participants, deadline)


def solve_with_deadline(
    objective: EnergyObjective, deadline: int
) -> DeadlinePlan:
    """Energy-optimal integer ``(K, E, T)`` with ``T <= deadline``.

    Raises ``ValueError`` when no feasible plan meets the deadline (the
    accuracy target cannot be reached in ``deadline`` rounds at any
    ``(K, E)`` with ``K <= N``).
    """
    if deadline < 1:
        raise ValueError(f"deadline must be >= 1; got {deadline}")

    # Is the unconstrained optimum already within the deadline?
    unconstrained = ACSSolver(objective).solve()
    assert unconstrained.rounds_int is not None
    assert unconstrained.energy_int is not None
    if unconstrained.rounds_int <= deadline:
        assert unconstrained.participants_int is not None
        assert unconstrained.epochs_int is not None
        return DeadlinePlan(
            participants=unconstrained.participants_int,
            epochs=unconstrained.epochs_int,
            rounds=unconstrained.rounds_int,
            energy=unconstrained.energy_int,
            deadline=deadline,
            binding=False,
        )

    # Deadline is binding.  Within the region T* <= T_max, the integer
    # objective at fixed K is minimised at the smallest E meeting the
    # deadline: on the boundary plateau the per-round cost B0*E + B1
    # grows with E while ceil(T*) can only shrink or stay — shrinking T
    # below the deadline never helps because the plateau walk already
    # proved larger-m plateaus are costlier here (the unconstrained
    # optimum lies at T > T_max, and energy is unimodal along the
    # plateau curve between them).  We still guard against plateau
    # jitter by evaluating a few rounds below the deadline as well.
    best: tuple[int, int, int, float] | None = None
    solver = ACSSolver(objective)
    for k in range(1, objective.n_servers + 1):
        if not objective.is_feasible(k, 1):
            continue
        for rounds in range(max(1, deadline - 2), deadline + 1):
            epochs = solver._min_epochs_for_rounds(k, rounds)
            if epochs is None:
                continue
            true_rounds = objective.bound.required_rounds_int(
                objective.epsilon, epochs, k
            )
            if true_rounds > deadline:
                continue
            energy = objective.value_integer(k, epochs)
            if best is None or energy < best[3]:
                best = (k, epochs, true_rounds, energy)
    if best is None:
        raise ValueError(
            f"no (K <= {objective.n_servers}, E) plan reaches "
            f"epsilon={objective.epsilon} within {deadline} rounds"
        )
    k, e, t, energy = best
    return DeadlinePlan(
        participants=k,
        epochs=e,
        rounds=t,
        energy=energy,
        deadline=deadline,
        binding=True,
    )
