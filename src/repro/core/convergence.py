"""Convergence bound of local SGD — §V-A of the paper.

The paper adopts the Khaled–Mishchenko–Richtárik (AISTATS 2020, Theorem 4)
bound for mu-convex, L-smooth local losses (Proposition 1), combined with
the monotone-averaging argument of Proposition 2, giving for the loss gap
after ``T`` global rounds of ``E`` local epochs with ``K`` participants:

    eps(T, E, K) = A0 / (T * E)  +  A1 / K  +  A2 * (E - 1)      (eq. 10)

with ``A0 = alpha0 ||w0 - w*||^2 / gamma``, ``A1 = alpha1 gamma sigma^2``,
``A2 = alpha2 gamma^2 L sigma^2``.  Rearranging for the smallest ``T``
that achieves a target gap ``eps`` gives eq. (11):

    T*(K, E) = A0 * K / ((eps*K - A1 - A2*K*(E-1)) * E).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["ConvergenceBound"]


@dataclass(frozen=True)
class ConvergenceBound:
    """The three-constant convergence model ``(A0, A1, A2)``.

    Attributes:
        a0: optimisation term — distance-to-optimum over learning rate;
            decays as ``1/(T E)``.
        a1: gradient-variance term — decays as ``1/K`` (more participants
            average out more stochastic-gradient noise).
        a2: client-drift term — grows as ``E - 1`` (longer local runs
            drift further from the global trajectory).  ``A2 = 0`` models
            fully homogeneous deterministic gradients.
    """

    a0: float
    a1: float
    a2: float

    def __post_init__(self) -> None:
        if self.a0 <= 0:
            raise ValueError(f"a0 must be positive; got {self.a0}")
        if self.a1 < 0:
            raise ValueError(f"a1 must be non-negative; got {self.a1}")
        if self.a2 < 0:
            raise ValueError(f"a2 must be non-negative; got {self.a2}")

    # ------------------------------------------------------------------
    # The bound itself.
    # ------------------------------------------------------------------
    def loss_gap(self, rounds: float, epochs: float, participants: float) -> float:
        """Evaluate eq. (10)'s upper bound on ``E[F(w_T) - F(w*)]``."""
        if rounds <= 0 or epochs < 1 or participants < 1:
            raise ValueError(
                "need rounds > 0, epochs >= 1, participants >= 1; got "
                f"T={rounds}, E={epochs}, K={participants}"
            )
        return (
            self.a0 / (rounds * epochs)
            + self.a1 / participants
            + self.a2 * (epochs - 1)
        )

    def asymptotic_gap(self, epochs: float, participants: float) -> float:
        """The floor ``A1/K + A2(E-1)`` that no amount of rounds removes.

        A target ``eps`` is reachable with ``(E, K)`` iff it exceeds this
        floor — this is exactly constraint (13c) divided by ``K``.
        """
        if epochs < 1 or participants < 1:
            raise ValueError(
                f"need epochs >= 1, participants >= 1; got E={epochs}, K={participants}"
            )
        return self.a1 / participants + self.a2 * (epochs - 1)

    # ------------------------------------------------------------------
    # Feasibility (constraint 13c) and the optimal number of rounds.
    # ------------------------------------------------------------------
    def is_feasible(self, epsilon: float, epochs: float, participants: float) -> bool:
        """Check ``eps*K - A1 - A2*K*(E-1) > 0`` (eq. 13c)."""
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive; got {epsilon}")
        return epsilon > self.asymptotic_gap(epochs, participants)

    def required_rounds(
        self, epsilon: float, epochs: float, participants: float
    ) -> float:
        """Continuous ``T*(K, E)`` from eq. (11).

        Raises ``ValueError`` when ``(E, K)`` cannot reach ``epsilon`` at
        any ``T`` (the asymptotic floor is too high).
        """
        if not self.is_feasible(epsilon, epochs, participants):
            raise ValueError(
                f"target epsilon={epsilon} is unreachable with E={epochs}, "
                f"K={participants}: asymptotic floor is "
                f"{self.asymptotic_gap(epochs, participants)}"
            )
        denominator = (
            epsilon * participants
            - self.a1
            - self.a2 * participants * (epochs - 1)
        ) * epochs
        return self.a0 * participants / denominator

    def required_rounds_int(
        self, epsilon: float, epochs: float, participants: float
    ) -> int:
        """Integer ``T`` (ceiling of :meth:`required_rounds`, at least 1)."""
        return max(1, math.ceil(self.required_rounds(epsilon, epochs, participants)))

    # ------------------------------------------------------------------
    # Domain limits used by the ACS search (Z_K, Z_E in §V-B).
    # ------------------------------------------------------------------
    def min_feasible_participants(self, epsilon: float, epochs: float) -> float:
        """Smallest continuous ``K`` satisfying (13c) for the given ``E``.

        From ``eps*K - A1 - A2*K*(E-1) > 0``: ``K > A1 / (eps - A2(E-1))``.
        Raises ``ValueError`` when even ``K -> inf`` cannot help (i.e.
        ``eps <= A2 (E-1)``).
        """
        margin = epsilon - self.a2 * (epochs - 1)
        if margin <= 0:
            raise ValueError(
                f"epsilon={epsilon} is below the drift floor A2*(E-1)="
                f"{self.a2 * (epochs - 1)}; no K is feasible"
            )
        return self.a1 / margin

    def max_feasible_epochs(self, epsilon: float, participants: float) -> float:
        """Largest continuous ``E`` satisfying (13c) for the given ``K``.

        From (13c): ``E < (eps*K - A1 + A2*K) / (A2*K)``.  Returns
        ``math.inf`` when ``A2 == 0`` (no drift, any E converges).
        Raises ``ValueError`` when not even ``E = 1`` is feasible.
        """
        if not self.is_feasible(epsilon, 1, participants):
            raise ValueError(
                f"even E=1 is infeasible for epsilon={epsilon}, K={participants}"
            )
        if self.a2 == 0:
            return math.inf
        return (
            epsilon * participants - self.a1 + self.a2 * participants
        ) / (self.a2 * participants)
