"""EE-FEI core: energy models, convergence bound, biconvex optimisation."""

from repro.core import constants
from repro.core.acs import ACSIterate, ACSResult, ACSSolver
from repro.core.baselines import (
    PolicyResult,
    fixed_policy,
    grid_search,
    optimize_e_only,
    optimize_k_only,
    random_search,
)
from repro.core.bounds_zoo import (
    ALL_MODEL_FAMILIES,
    ConvergenceModel,
    KMRBoundModel,
    KStepBoundModel,
    StichBoundModel,
    fit_model,
)
from repro.core.calibration import (
    EnergyFit,
    GapObservation,
    TimingFit,
    fit_convergence_constants,
    fit_training_energy,
    fit_training_timing,
    gap_observations_from_history,
)
from repro.core.closed_form import e_star, e_star_unclipped, k_star, k_star_unclipped
from repro.core.convergence import ConvergenceBound
from repro.core.deadline import DeadlinePlan, solve_with_deadline
from repro.core.energy_model import (
    EnergyParams,
    HeterogeneousEnergyParams,
    data_collection_energy,
    local_training_energy,
    round_energy_per_server,
    total_energy,
)
from repro.core.objective import EnergyObjective
from repro.core.planner import EnergyPlan, EnergyPlanner
from repro.core.sensitivity import (
    PerturbationResult,
    SensitivityReport,
    analyze_sensitivity,
)

__all__ = [
    "constants",
    "ACSIterate",
    "ACSResult",
    "ACSSolver",
    "PolicyResult",
    "fixed_policy",
    "grid_search",
    "optimize_e_only",
    "optimize_k_only",
    "random_search",
    "ALL_MODEL_FAMILIES",
    "ConvergenceModel",
    "KMRBoundModel",
    "KStepBoundModel",
    "StichBoundModel",
    "fit_model",
    "EnergyFit",
    "GapObservation",
    "TimingFit",
    "fit_convergence_constants",
    "fit_training_energy",
    "fit_training_timing",
    "gap_observations_from_history",
    "DeadlinePlan",
    "solve_with_deadline",
    "PerturbationResult",
    "SensitivityReport",
    "analyze_sensitivity",
    "e_star",
    "e_star_unclipped",
    "k_star",
    "k_star_unclipped",
    "ConvergenceBound",
    "EnergyParams",
    "HeterogeneousEnergyParams",
    "data_collection_energy",
    "local_training_energy",
    "round_energy_per_server",
    "total_energy",
    "EnergyObjective",
    "EnergyPlan",
    "EnergyPlanner",
]
