"""Sensitivity of the EE-FEI plan to mis-calibrated constants.

The optimizer is only as good as the constants fed into it: ``(c0, c1)``
come from a least-squares fit over a timing grid and ``(A0, A1, A2)``
from noisy pilot runs.  This module quantifies the *regret* of planning
with perturbed constants — the extra energy paid when the schedule is
computed from wrong constants but executed on the true system:

    regret(delta) = E_true(plan(perturbed)) / E_true(plan(true)) - 1.

A small regret under large perturbations means the biconvex landscape is
flat around the optimum and calibration precision is not critical — an
ablation DESIGN.md calls out explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.core.acs import ACSSolver
from repro.core.convergence import ConvergenceBound
from repro.core.energy_model import EnergyParams
from repro.core.objective import EnergyObjective

__all__ = ["PerturbationResult", "SensitivityReport", "analyze_sensitivity"]


@dataclass(frozen=True)
class PerturbationResult:
    """Outcome of planning with one perturbed constant.

    Attributes:
        constant: name of the perturbed constant (e.g. ``"a1"``).
        factor: multiplicative perturbation applied (e.g. 1.5 = +50 %).
        participants / epochs: the (wrong) plan's integer parameters.
        planned_energy: energy the wrong model *predicted* for its plan.
        true_energy: energy the true system pays for the wrong plan, or
            ``None`` when the wrong plan is infeasible on the true
            system (it fails to reach the accuracy target at any T).
        regret: ``true_energy / optimal_true_energy - 1`` (None when
            infeasible).
    """

    constant: str
    factor: float
    participants: int
    epochs: int
    planned_energy: float
    true_energy: float | None
    regret: float | None


@dataclass(frozen=True)
class SensitivityReport:
    """All perturbation outcomes around one true objective."""

    optimal_energy: float
    results: tuple[PerturbationResult, ...]

    def worst_regret(self) -> float:
        """Largest finite regret across all perturbations."""
        finite = [r.regret for r in self.results if r.regret is not None]
        return max(finite) if finite else 0.0

    def infeasible_count(self) -> int:
        """Perturbations whose plan cannot reach the target on truth."""
        return sum(1 for r in self.results if r.true_energy is None)


def _perturbed_objective(
    objective: EnergyObjective, constant: str, factor: float
) -> EnergyObjective:
    """Copy of ``objective`` with one constant scaled by ``factor``."""
    bound = objective.bound
    energy = objective.energy
    if constant in ("a0", "a1", "a2"):
        bound = ConvergenceBound(
            a0=bound.a0 * factor if constant == "a0" else bound.a0,
            a1=bound.a1 * factor if constant == "a1" else bound.a1,
            a2=bound.a2 * factor if constant == "a2" else bound.a2,
        )
    elif constant in ("c0", "c1", "rho", "e_upload"):
        energy = replace(energy, **{constant: getattr(energy, constant) * factor})
    else:
        raise ValueError(f"unknown constant {constant!r}")
    return EnergyObjective(
        bound=bound,
        energy=energy,
        epsilon=objective.epsilon,
        n_servers=objective.n_servers,
    )


def analyze_sensitivity(
    objective: EnergyObjective,
    constants: tuple[str, ...] = ("a0", "a1", "a2", "c0", "c1", "rho", "e_upload"),
    factors: tuple[float, ...] = (0.5, 0.8, 1.25, 2.0),
) -> SensitivityReport:
    """Plan under each single-constant perturbation, price on the truth.

    Args:
        objective: the *true* objective (ground-truth constants).
        constants: which constants to perturb, one at a time.
        factors: multiplicative perturbations to apply.

    Returns:
        A :class:`SensitivityReport`; perturbations whose planning
        problem becomes globally infeasible are skipped (they would make
        the planner refuse, which is a calibration error the operator
        notices immediately, unlike silent regret).
    """
    true_plan = ACSSolver(objective).solve()
    assert true_plan.energy_int is not None
    optimal = true_plan.energy_int

    results: list[PerturbationResult] = []
    for constant in constants:
        for factor in factors:
            perturbed = _perturbed_objective(objective, constant, factor)
            try:
                wrong_plan = ACSSolver(perturbed).solve()
            except ValueError:
                continue  # planner visibly refuses: not silent regret
            k = wrong_plan.participants_int
            e = wrong_plan.epochs_int
            assert k is not None and e is not None
            assert wrong_plan.energy_int is not None
            if objective.is_feasible(k, e):
                true_energy = objective.value_integer(k, e)
                regret = true_energy / optimal - 1.0
            else:
                true_energy = None
                regret = None
            results.append(
                PerturbationResult(
                    constant=constant,
                    factor=factor,
                    participants=k,
                    epochs=e,
                    planned_energy=wrong_plan.energy_int,
                    true_energy=true_energy,
                    regret=regret,
                )
            )
    return SensitivityReport(optimal_energy=optimal, results=tuple(results))
