"""Calibration: fitting model constants from measured traces — §VI-B.

Two fits are needed to instantiate the optimizer on a real system:

1. **Energy constants** ``(c0, c1)`` of eq. (5), fitted by least squares
   from the measured duration of the local-training step on a grid of
   ``(E, n_k)`` combinations (the paper's Table I) multiplied by the
   training power.  The paper reports ``c0 = 7.79e-5`` and
   ``c1 = 3.34e-3``.

2. **Convergence constants** ``(A0, A1, A2)`` of eq. (10), fitted by
   non-negative least squares from observed loss gaps at various
   ``(T, E, K)`` combinations — e.g. the training histories behind
   Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np
from scipy.optimize import nnls

from repro.core.convergence import ConvergenceBound
from repro.fl.metrics import TrainingHistory

__all__ = [
    "EnergyFit",
    "TimingFit",
    "GapObservation",
    "fit_training_energy",
    "fit_training_timing",
    "fit_convergence_constants",
    "gap_observations_from_history",
]


@dataclass(frozen=True)
class EnergyFit:
    """Least-squares fit of eq. (5): energy = c0*E*n + c1*E.

    Attributes:
        c0: joules per sample-epoch.
        c1: joules per epoch (data-size independent).
        rmse: root-mean-square residual of the fit, in joules.
    """

    c0: float
    c1: float
    rmse: float


@dataclass(frozen=True)
class TimingFit:
    """Least-squares fit of the timing law: duration = E*(tau0*n + tau1)."""

    tau0: float
    tau1: float
    rmse: float


@dataclass(frozen=True)
class GapObservation:
    """One observed loss gap at a parameter combination.

    Attributes:
        rounds: global rounds ``T`` completed when the gap was measured.
        epochs: local epochs ``E`` used throughout the run.
        participants: ``K`` used throughout the run.
        gap: observed ``F(w_T) - F(w*)`` (must be positive).
    """

    rounds: int
    epochs: int
    participants: int
    gap: float

    def __post_init__(self) -> None:
        if self.rounds < 1 or self.epochs < 1 or self.participants < 1:
            raise ValueError("rounds, epochs, participants must be >= 1")
        if self.gap <= 0:
            raise ValueError(f"gap must be positive; got {self.gap}")


def _duration_fit(
    durations: Mapping[tuple[int, int], float], scale: float
) -> tuple[float, float, float]:
    """Shared least-squares core for the timing and energy fits."""
    if len(durations) < 2:
        raise ValueError("need at least two (E, n) measurements to fit two constants")
    rows = []
    targets = []
    for (epochs, n_samples), seconds in durations.items():
        if epochs < 1 or n_samples < 1:
            raise ValueError(f"invalid measurement key (E={epochs}, n={n_samples})")
        if seconds <= 0:
            raise ValueError(f"duration must be positive; got {seconds}")
        rows.append([epochs * n_samples, epochs])
        targets.append(seconds * scale)
    design = np.array(rows, dtype=float)
    target = np.array(targets, dtype=float)
    solution, *_ = np.linalg.lstsq(design, target, rcond=None)
    residuals = design @ solution - target
    rmse = float(np.sqrt(np.mean(residuals**2)))
    return float(solution[0]), float(solution[1]), rmse


def fit_training_energy(
    durations: Mapping[tuple[int, int], float], training_power_w: float
) -> EnergyFit:
    """Fit ``(c0, c1)`` from step-(3) durations and the training power.

    Args:
        durations: mapping ``(E, n_k) -> seconds`` (Table I format).
        training_power_w: average power during local training
            (paper: 5.553 W).
    """
    if training_power_w <= 0:
        raise ValueError(f"training power must be positive; got {training_power_w}")
    c0, c1, rmse = _duration_fit(durations, training_power_w)
    return EnergyFit(c0=c0, c1=c1, rmse=rmse)


def fit_training_timing(
    durations: Mapping[tuple[int, int], float]
) -> TimingFit:
    """Fit the timing constants ``(tau0, tau1)`` of the step-(3) duration law."""
    tau0, tau1, rmse = _duration_fit(durations, 1.0)
    return TimingFit(tau0=tau0, tau1=tau1, rmse=rmse)


def fit_convergence_constants(
    observations: Sequence[GapObservation],
    min_a0: float = 1e-12,
    weighting: str = "relative",
) -> ConvergenceBound:
    """Fit ``(A0, A1, A2)`` by non-negative least squares on eq. (10).

    Each observation contributes one row
    ``gap ~= A0/(T*E) + A1/K + A2*(E-1)``.  NNLS enforces the
    non-negativity the bound requires; ``A0`` is floored at ``min_a0`` to
    keep the returned :class:`ConvergenceBound` valid when the data do not
    identify the optimisation term.

    Args:
        observations: the measured gaps.
        min_a0: floor applied to the fitted ``A0``.
        weighting: ``"relative"`` scales each row by ``1/gap`` so the fit
            minimises *relative* error — essential because gaps span
            orders of magnitude between round 1 and round 100, and the
            optimizer cares about the small late-training gaps where the
            accuracy target lives.  ``"absolute"`` is the plain fit.
    """
    if len(observations) < 3:
        raise ValueError("need at least three observations to fit three constants")
    if weighting not in ("relative", "absolute"):
        raise ValueError(
            f"weighting must be 'relative' or 'absolute'; got {weighting!r}"
        )
    design = np.array(
        [
            [
                1.0 / (obs.rounds * obs.epochs),
                1.0 / obs.participants,
                float(obs.epochs - 1),
            ]
            for obs in observations
        ]
    )
    target = np.array([obs.gap for obs in observations])
    if weighting == "relative":
        weights = 1.0 / target
        design = design * weights[:, None]
        target = np.ones_like(target)
    solution, _ = nnls(design, target)
    a0 = max(float(solution[0]), min_a0)
    return ConvergenceBound(a0=a0, a1=float(solution[1]), a2=float(solution[2]))


def gap_observations_from_history(
    history: TrainingHistory,
    participants: int,
    f_star: float,
    stride: int = 1,
    min_gap: float = 1e-9,
    burn_in: int = 0,
) -> list[GapObservation]:
    """Convert a training history into gap observations for the fitter.

    Args:
        history: a recorded FedAvg run (fixed E and K throughout).
        participants: the ``K`` the run used.
        f_star: estimate of the minimum loss ``F(w*)`` (e.g. the loss of
            a long centralised run on the pooled data).
        stride: keep every ``stride``-th round to decorrelate samples.
        min_gap: rounds whose gap falls below this are dropped (they carry
            no information and would make the log-scale fit degenerate).
        burn_in: drop the first ``burn_in`` rounds.  Early rounds carry
            transients the three-term bound cannot represent (it has no
            K-dependent transient), and including them inflates the
            fitted ``A1``.
    """
    if stride < 1:
        raise ValueError(f"stride must be >= 1; got {stride}")
    if burn_in < 0:
        raise ValueError(f"burn_in must be non-negative; got {burn_in}")
    observations = []
    for record in history.records[burn_in::stride]:
        gap = record.train_loss - f_star
        if gap <= min_gap:
            continue
        observations.append(
            GapObservation(
                rounds=record.round_index + 1,
                epochs=record.local_epochs,
                participants=participants,
                gap=gap,
            )
        )
    return observations
