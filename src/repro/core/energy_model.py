"""Energy consumption models of FEI — §IV of the paper.

Three per-round energy terms are modelled for each participating edge
server ``k``:

* **data collection** (eq. (4)): ``e_k^I(n_k) = rho_k * n_k`` — the energy
  IoT devices spend uploading ``n_k`` samples;
* **local training** (eq. (5)): ``e_k^P(E, n_k) = c0*E*n_k + c1*E``;
* **model upload**: a constant ``e_k^U`` per selected server.

The total over ``T`` rounds with ``K`` participants per round is
``e = sum_t sum_{k in K_t} (e^I + e^P + e^U)`` (eq. (3)/(6)).

Heterogeneity: eq. (12) takes expectations over the per-server constants
(``B0 = E[c0] n + E[c1]``, ``B1 = E[rho] n + E[e^U]``).
:class:`EnergyParams` is the homogeneous case used throughout the paper's
evaluation; :class:`HeterogeneousEnergyParams` draws per-server constants
and reduces to expectations for the optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import constants

__all__ = [
    "EnergyParams",
    "HeterogeneousEnergyParams",
    "aggregation_energy",
    "cloud_fan_in",
    "data_collection_energy",
    "local_training_energy",
    "round_energy_per_server",
    "total_energy",
]


def data_collection_energy(rho: float, n_samples: int | np.ndarray) -> float | np.ndarray:
    """Energy for IoT devices to upload ``n_samples`` samples — eq. (4)."""
    if rho < 0:
        raise ValueError(f"rho must be non-negative; got {rho}")
    return rho * np.asarray(n_samples, dtype=float) if np.ndim(n_samples) else rho * n_samples


def local_training_energy(
    c0: float, c1: float, epochs: int | float, n_samples: int | float
) -> float:
    """Energy for ``epochs`` local epochs over ``n_samples`` — eq. (5)."""
    if c0 < 0 or c1 < 0:
        raise ValueError(f"c0 and c1 must be non-negative; got c0={c0}, c1={c1}")
    if epochs < 0 or n_samples < 0:
        raise ValueError("epochs and n_samples must be non-negative")
    return c0 * epochs * n_samples + c1 * epochs


@dataclass(frozen=True)
class EnergyParams:
    """Homogeneous per-server energy constants (the paper's prototype).

    Attributes:
        rho: IoT uplink energy per data sample, J (eq. (4)).
        c0: training energy per sample-epoch, J (eq. (5)).
        c1: training energy per epoch independent of data size, J.
        e_upload: energy for one model upload ``e_k^U``, J.
        n_samples: local dataset size ``n_k`` (paper: 3 000 per server).
    """

    rho: float
    c0: float = constants.C0_JOULES_PER_SAMPLE_EPOCH
    c1: float = constants.C1_JOULES_PER_EPOCH
    e_upload: float = 0.0
    n_samples: int = constants.SAMPLES_PER_SERVER

    def __post_init__(self) -> None:
        for name in ("rho", "c0", "c1", "e_upload"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative; got {getattr(self, name)}")
        if self.n_samples < 1:
            raise ValueError(f"n_samples must be positive; got {self.n_samples}")

    @property
    def b0(self) -> float:
        """``B0 = c0 * n + c1`` — energy that scales with E (eq. (12))."""
        return self.c0 * self.n_samples + self.c1

    @property
    def b1(self) -> float:
        """``B1 = rho * n + e^U`` — per-round energy independent of E."""
        return self.rho * self.n_samples + self.e_upload

    def round_energy(self, epochs: int | float) -> float:
        """Per-server energy of one global round: ``B0*E + B1``."""
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1; got {epochs}")
        return self.b0 * epochs + self.b1


@dataclass(frozen=True)
class HeterogeneousEnergyParams:
    """Per-server energy constants drawn from arbitrary arrays.

    All arrays must share the same length ``N`` (number of edge servers).
    The optimizer consumes the *expected* constants through :meth:`mean`,
    exercising the expectation operators of eq. (12); the testbed
    simulation consumes the per-server values through :meth:`for_server`.
    """

    rho: np.ndarray
    c0: np.ndarray
    c1: np.ndarray
    e_upload: np.ndarray
    n_samples: int

    def __post_init__(self) -> None:
        arrays = {
            "rho": np.asarray(self.rho, dtype=float),
            "c0": np.asarray(self.c0, dtype=float),
            "c1": np.asarray(self.c1, dtype=float),
            "e_upload": np.asarray(self.e_upload, dtype=float),
        }
        lengths = {a.shape for a in arrays.values()}
        if len(lengths) != 1 or arrays["rho"].ndim != 1:
            raise ValueError("rho, c0, c1 and e_upload must be 1-D arrays of equal length")
        if arrays["rho"].size == 0:
            raise ValueError("need at least one server")
        for name, arr in arrays.items():
            if (arr < 0).any():
                raise ValueError(f"{name} must be non-negative")
            object.__setattr__(self, name, arr)
        if self.n_samples < 1:
            raise ValueError(f"n_samples must be positive; got {self.n_samples}")

    @property
    def n_servers(self) -> int:
        return int(self.rho.size)

    def for_server(self, server_id: int) -> EnergyParams:
        """Materialise the constants of one specific edge server."""
        return EnergyParams(
            rho=float(self.rho[server_id]),
            c0=float(self.c0[server_id]),
            c1=float(self.c1[server_id]),
            e_upload=float(self.e_upload[server_id]),
            n_samples=self.n_samples,
        )

    def mean(self) -> EnergyParams:
        """Expected constants — what eq. (12)'s B0/B1 are built from."""
        return EnergyParams(
            rho=float(self.rho.mean()),
            c0=float(self.c0.mean()),
            c1=float(self.c1.mean()),
            e_upload=float(self.e_upload.mean()),
            n_samples=self.n_samples,
        )


def cloud_fan_in(participants: int, tiers: int = 0) -> int:
    """Messages the cloud aggregator combines in one round.

    Flat aggregation (``tiers=0``, the paper's single-hop topology)
    means the cloud receives all ``K`` participant uploads.  With
    ``tiers`` fog nodes interposed, each fog node pre-folds its share of
    the uploads and the cloud combines only the ``min(tiers, K)`` tier
    partials — the cloud-side cost stops growing with ``K`` once
    ``K > tiers``, which is what makes million-client rounds feasible at
    a fixed-capacity cloud link.
    """
    if participants < 1:
        raise ValueError(f"participants must be >= 1; got {participants}")
    if tiers < 0:
        raise ValueError(f"tiers must be >= 0; got {tiers}")
    if tiers == 0:
        return participants
    return min(tiers, participants)


def aggregation_energy(
    e_receive: float,
    participants: int,
    rounds: int | float,
    tiers: int = 0,
) -> float:
    """Total cloud-side reception energy over ``rounds`` rounds.

    Each message the cloud combines is priced at ``e_receive`` joules
    (symmetric-link assumption: receiving one model costs what
    transmitting it does).  Fog-tier reception is charged to the fog
    nodes, not the cloud, so the tiered value is what the cloud's
    energy budget actually sees: ``T * min(tiers, K) * e_receive``
    against the flat ``T * K * e_receive``.
    """
    if e_receive < 0:
        raise ValueError(f"e_receive must be non-negative; got {e_receive}")
    if rounds <= 0:
        raise ValueError(f"rounds must be positive; got {rounds}")
    return float(rounds) * cloud_fan_in(participants, tiers) * e_receive


def round_energy_per_server(params: EnergyParams, epochs: int | float) -> float:
    """Energy one participating server consumes in one round (all 3 terms)."""
    return params.round_energy(epochs)


def total_energy(
    params: EnergyParams,
    epochs: int | float,
    participants: int | float,
    rounds: int | float,
) -> float:
    """Total FEI energy ``e = T * K * (B0*E + B1)`` — eq. (6) homogeneous case.

    Continuous values of ``epochs``/``participants``/``rounds`` are allowed
    because the optimizer relaxes the integer constraints.
    """
    if participants < 1:
        raise ValueError(f"participants must be >= 1; got {participants}")
    if rounds <= 0:
        raise ValueError(f"rounds must be positive; got {rounds}")
    return rounds * participants * params.round_energy(epochs)
