"""Alternate Convex Search — Algorithm 1 of the paper.

Theorem 1 establishes that the reduced objective (13a) is strictly
biconvex in ``(K, E)``.  ACS (Gorski, Pfeuffer & Klamroth 2007) exploits
this: alternately minimise the objective exactly in one variable while
holding the other fixed, using the closed-form per-variable optima of
eqs. (15)/(17), until the objective improves by less than a target
residual ``xi``.  Each sweep can only decrease the objective, so the
iteration converges to a partial optimum.

After the continuous search converges, the solver optionally *rounds to
integers*: it evaluates the objective (with integer ``T = ceil(T*)``) at
the four integer neighbours of the continuous solution and returns the
feasible minimiser — addressing the round-up gap the paper mentions when
comparing the analytic ``E*`` with the trace-measured optimum.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.closed_form import e_star, k_star
from repro.core.objective import EnergyObjective
from repro.obs.observer import active_or_none

if TYPE_CHECKING:
    from repro.obs.observer import Observer

__all__ = ["ACSIterate", "ACSResult", "ACSSolver"]


@dataclass(frozen=True)
class ACSIterate:
    """One sweep of the ACS loop (after updating both K and E)."""

    iteration: int
    participants: float
    epochs: float
    objective_value: float


@dataclass(frozen=True)
class ACSResult:
    """Outcome of an ACS solve.

    Attributes:
        participants: continuous optimal ``K``.
        epochs: continuous optimal ``E``.
        objective_value: continuous objective at the solution.
        participants_int / epochs_int / rounds_int: integer plan obtained
            by neighbour rounding (``None`` if rounding was disabled).
        energy_int: objective value of the integer plan.
        converged: whether the residual criterion was met.
        iterates: full iterate history for convergence diagnostics.
    """

    participants: float
    epochs: float
    objective_value: float
    participants_int: int | None
    epochs_int: int | None
    rounds_int: int | None
    energy_int: float | None
    converged: bool
    iterates: tuple[ACSIterate, ...] = field(default_factory=tuple)

    @property
    def n_iterations(self) -> int:
        return len(self.iterates)


class ACSSolver:
    """Alternate Convex Search over the biconvex energy objective.

    Args:
        objective: the reduced objective ``E_hat(K, E)``.
        residual: stopping threshold ``xi`` on the objective improvement
            between successive sweeps (Algorithm 1's input).
        max_iterations: hard cap on sweeps (the paper's algorithm loops
            unboundedly; biconvexity makes a small cap sufficient).
        observer: optional telemetry sink; each sweep emits an
            ``acs.iteration`` event with the current objective value and
            updates the ``acs.objective`` gauge.
    """

    def __init__(
        self,
        objective: EnergyObjective,
        residual: float = 1e-9,
        max_iterations: int = 200,
        observer: "Observer | None" = None,
    ) -> None:
        if residual <= 0:
            raise ValueError(f"residual must be positive; got {residual}")
        if max_iterations < 1:
            raise ValueError(f"max_iterations must be >= 1; got {max_iterations}")
        self.objective = objective
        self.residual = residual
        self.max_iterations = max_iterations
        self._observer = active_or_none(observer)
        # Integer-plan energies already evaluated by the plateau walks;
        # distinct (K, E) pairs recur heavily across the K scan.
        self._energy_cache: dict[tuple[int, int], float] = {}

    def _initial_point(
        self, k0: float | None, e0: float | None
    ) -> tuple[float, float]:
        """Pick a feasible starting point, defaulting to (N, 1).

        ``E = 1`` is always inside the drift constraint and ``K = N`` is
        the most forgiving K, so (N, 1) is feasible whenever the problem
        is feasible at all.
        """
        e = 1.0 if e0 is None else float(e0)
        if k0 is None:
            lo, hi = self.objective.k_domain(e)
            k = hi
        else:
            k = float(k0)
        if not self.objective.is_feasible(k, e):
            raise ValueError(
                f"initial point (K={k}, E={e}) is infeasible for "
                f"epsilon={self.objective.epsilon}"
            )
        return k, e

    def solve(
        self,
        k0: float | None = None,
        e0: float | None = None,
        round_to_integers: bool = True,
    ) -> ACSResult:
        """Run Algorithm 1 from ``(k0, e0)`` and return the solution.

        Raises ``ValueError`` if the problem is infeasible (no ``(K, E)``
        with ``K <= N`` can reach the target accuracy).
        """
        obs = self._observer
        k, e = self._initial_point(k0, e0)
        value = self.objective.value(k, e)
        iterates: list[ACSIterate] = [ACSIterate(0, k, e, value)]
        converged = False
        if obs is not None:
            obs.emit(
                "acs.iteration", iteration=0, participants=k, epochs=e,
                objective=value,
            )

        for iteration in range(1, self.max_iterations + 1):
            # Step 1: exact minimisation in K at fixed E (eq. (15)).
            k = k_star(self.objective, e)
            # Step 2: exact minimisation in E at fixed K (eq. (17), exact root).
            e = e_star(self.objective, k)
            new_value = self.objective.value(k, e)
            iterates.append(ACSIterate(iteration, k, e, new_value))
            if obs is not None:
                obs.counter("acs.iterations").inc()
                obs.gauge("acs.objective").set(new_value)
                obs.emit(
                    "acs.iteration", iteration=iteration, participants=k,
                    epochs=e, objective=new_value,
                )
            if abs(value - new_value) <= self.residual:
                converged = True
                value = new_value
                break
            value = new_value

        result_int = self._round_solution(k, e) if round_to_integers else None
        if obs is not None:
            obs.emit(
                "acs.solve", converged=converged, iterations=len(iterates) - 1,
                participants=k, epochs=e, objective=value,
            )
        return ACSResult(
            participants=k,
            epochs=e,
            objective_value=value,
            participants_int=result_int[0] if result_int else None,
            epochs_int=result_int[1] if result_int else None,
            rounds_int=result_int[2] if result_int else None,
            energy_int=result_int[3] if result_int else None,
            converged=converged,
            iterates=tuple(iterates),
        )

    def _integer_energy(self, k: int, e: int) -> float | None:
        """Integer-plan energy, or ``None`` when ``(k, e)`` is infeasible."""
        if not self.objective.is_feasible(k, e):
            return None
        return self.objective.value_integer(k, e)

    def _min_epochs_for_rounds(self, k: int, rounds: int) -> int | None:
        """Smallest feasible integer E with ``T*(K, E) <= rounds``.

        The integer objective is piecewise in E: within the plateau where
        ``ceil(T*) == m`` the per-round cost ``K (B0 E + B1)`` grows
        linearly in E, so the best E on each plateau is its smallest
        member.  The plateau boundary solves the quadratic
        ``m A2 K E^2 - m C4 E + A0 K <= 0`` (from ``T*(E) <= m``), or the
        linear form when ``A2 = 0``.  Returns ``None`` for an empty
        plateau.
        """
        bound = self.objective.bound
        eps = self.objective.epsilon
        a0, a1, a2 = bound.a0, bound.a1, bound.a2
        c4 = eps * k - a1 + a2 * k
        if c4 <= 0:
            return None
        # Roots of (m A2 K) E^2 - (m C4) E + A0 K = 0.  The small root is
        # computed as 2c / (b + sqrt(D)) — the naive (b - sqrt(D)) / (2a)
        # cancels catastrophically when A2 is tiny.  An a-coefficient
        # that underflows to zero degrades to the A2 = 0 linear form.
        a_coef = rounds * a2 * k
        b_coef = rounds * c4
        c_coef = a0 * k
        if a_coef == 0.0:
            root_low = c_coef / (rounds * (eps * k - a1))
            candidate = max(1, math.ceil(root_low))
        else:
            disc = b_coef**2 - 4.0 * a_coef * c_coef
            if disc < 0:
                return None
            sqrt_disc = math.sqrt(disc)
            root_low = 2.0 * c_coef / (b_coef + sqrt_disc)
            root_high = (b_coef + sqrt_disc) / (2.0 * a_coef)
            candidate = max(1, math.ceil(root_low))
            if candidate > root_high:
                return None
        if not self.objective.is_feasible(k, candidate):
            return None
        if bound.required_rounds(eps, candidate, k) > rounds + 1e-9:
            return None
        return candidate

    def _plateau_epochs_batch(
        self, k: int, rounds: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`_min_epochs_for_rounds` over many round counts.

        Returns ``(epochs, valid)`` arrays aligned with ``rounds``:
        ``epochs[i]`` is the plateau-minimal integer E for ``rounds[i]``
        wherever ``valid[i]``, matching the scalar method element for
        element (the arithmetic mirrors it term by term, including the
        cancellation-stable small quadratic root).
        """
        objective = self.objective
        bound = objective.bound
        eps = objective.epsilon
        a0, a1, a2 = bound.a0, bound.a1, bound.a2
        m = np.asarray(rounds, dtype=float)
        c4 = eps * k - a1 + a2 * k
        if c4 <= 0 or not 1 <= k <= objective.n_servers:
            return np.zeros(m.shape), np.zeros(m.shape, dtype=bool)
        a_coef = m * a2 * k
        b_coef = m * c4
        c_coef = a0 * k
        quadratic = a_coef != 0.0
        ok = np.ones(m.shape, dtype=bool)
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            linear_root = c_coef / (m * (eps * k - a1))
            disc = b_coef**2 - 4.0 * a_coef * c_coef
            sqrt_disc = np.sqrt(np.maximum(disc, 0.0))
            quad_low = 2.0 * c_coef / (b_coef + sqrt_disc)
            quad_high = (b_coef + sqrt_disc) / (2.0 * a_coef)
            root_low = np.where(quadratic, quad_low, linear_root)
            candidate = np.maximum(1.0, np.ceil(root_low))
            ok &= np.where(quadratic, disc >= 0, True)
            ok &= np.where(quadratic, candidate <= quad_high, True)
            # Feasibility of (k, candidate) — the scalar is_feasible check.
            ok &= eps > a1 / k + a2 * (candidate - 1.0)
            # T*(candidate) must actually fit within the plateau's rounds.
            denominator = (eps * k - a1 - a2 * k * (candidate - 1.0)) * candidate
            required = a0 * k / denominator
            ok &= ~(required > m + 1e-9)
        return candidate, ok

    # Plateau indices evaluated per vectorized batch of the walk below.
    _PLATEAU_CHUNK = 4096

    def _cached_integer_energy(self, k: int, epochs: int) -> float:
        key = (k, epochs)
        energy = self._energy_cache.get(key)
        if energy is None:
            energy = self.objective.value_integer(k, epochs)
            self._energy_cache[key] = energy
        return energy

    def _best_epochs_for_participants(
        self, k: int, max_plateaus: int = 200_000, patience: int = 1024
    ) -> tuple[int, float] | None:
        """Exact best integer ``E`` for a fixed integer ``K``.

        Walks the ``T = m`` plateaus in increasing ``m``, evaluating each
        plateau at its optimal (smallest) E.  The walk naturally ends at
        ``m = ceil(T*(E=1))``, where E has shrunk to 1 and further rounds
        only add cost.  The plateau-minimum sequence is *not* unimodal
        (the ceiling on E adds jitter, and with ``B1 ~ 0`` the tail can
        keep descending), so the walk is exhaustive up to that end point;
        ``patience`` only guards the pathological case where the end
        plateau exceeds ``max_plateaus``.

        Plateau boundaries are computed in vectorized chunks
        (:meth:`_plateau_epochs_batch`) and consecutive equal plateau-Es
        are dropped before evaluation — the same dedupe the scalar loop
        performed one ``m`` at a time.
        """
        best: tuple[int, float] | None = None
        worse_streak = 0
        previous_epochs: int | None = None
        start = 1
        while start <= max_plateaus:
            stop = min(start + self._PLATEAU_CHUNK, max_plateaus + 1)
            candidates, valid = self._plateau_epochs_batch(
                k, np.arange(start, stop, dtype=float)
            )
            start = stop
            if not valid.any():
                continue
            plateau_epochs = candidates[valid].astype(int)
            # Consecutive m with the same plateau-E: strictly more rounds
            # at the same per-round cost, never an improvement.
            keep = np.ones(plateau_epochs.shape, dtype=bool)
            keep[1:] = plateau_epochs[1:] != plateau_epochs[:-1]
            if previous_epochs is not None and plateau_epochs[0] == previous_epochs:
                keep[0] = False
            previous_epochs = int(plateau_epochs[-1])
            for epochs in plateau_epochs[keep]:
                epochs = int(epochs)
                energy = self._cached_integer_energy(k, epochs)
                if best is None or energy < best[1]:
                    best = (epochs, energy)
                    worse_streak = 0
                else:
                    worse_streak += 1
                if epochs == 1 or worse_streak >= patience:
                    return best
        return best

    def _seed_epochs(self, k: int, e_continuous: float) -> int:
        """Clamp the integer-search seed into the useful E range.

        With a weak drift term (``A2 ~ 0``) the continuous optimum in E
        runs off to the domain cap, but the *integer* objective provably
        increases once ``ceil(T*) == 1`` (energy is then ``K (B0 E + B1)``,
        linear in E).  Binary-search the smallest integer E whose required
        round count is already 1 and seed there instead, so the local
        descent starts within a few steps of the integer optimum.
        """
        bound = self.objective.bound
        epsilon = self.objective.epsilon
        seed = max(int(round(e_continuous)), 1)
        if not self.objective.is_feasible(k, seed):
            return 1
        if bound.required_rounds(epsilon, seed, k) >= 1.0:
            return seed
        lo, hi = 1, seed  # T*(lo) may be >= 1; T*(hi) < 1; T* decreasing in E
        while lo < hi:
            mid = (lo + hi) // 2
            if (
                self.objective.is_feasible(k, mid)
                and bound.required_rounds(epsilon, mid, k) < 1.0
            ):
                hi = mid
            else:
                lo = mid + 1
        return lo

    # K values on each side of the continuous optimum scanned when the
    # testbed is too large to scan exhaustively.
    _K_WINDOW = 8

    def _round_solution(self, k: float, e: float) -> tuple[int, int, int, float]:
        """Round the continuous optimum to the best integer plan.

        The *integer* objective uses ``T = ceil(T*)``, whose plateaus make
        the landscape non-convex: the best integer plan can sit well away
        from the continuous optimum (the "roundup" gap the paper notes in
        Fig. 6), and single-step descent gets trapped between plateaus.
        Instead, for each candidate K the exact best integer E is found by
        the plateau walk of :meth:`_best_epochs_for_participants`.  All K
        are scanned when the testbed is small; otherwise a window around
        the continuous ``K*`` (the objective is strictly convex in K, so
        the integer optimum in K stays near it).
        """
        n = self.objective.n_servers
        if n <= 4 * self._K_WINDOW:
            k_candidates = range(1, n + 1)
        else:
            center = int(round(k))
            lo = max(1, center - self._K_WINDOW)
            hi = min(n, center + self._K_WINDOW)
            k_candidates = range(lo, hi + 1)

        best: tuple[int, int, float] | None = None
        for ki in k_candidates:
            if not self.objective.is_feasible(ki, 1):
                # E = 1 is the most forgiving epoch count; if even that is
                # infeasible at this K, every E is (the drift floor only
                # grows with E).
                continue
            found = self._best_epochs_for_participants(ki)
            if found is None:
                continue
            epochs, energy = found
            if best is None or energy < best[2]:
                best = (ki, epochs, energy)
        if best is None:
            raise ValueError("no feasible integer plan exists")
        ki, ei, energy = best
        rounds = self.objective.bound.required_rounds_int(
            self.objective.epsilon, ei, ki
        )
        return ki, ei, rounds, energy
