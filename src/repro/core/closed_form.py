"""Closed-form per-variable optima ``K*(E)`` and ``E*(K)`` — eqs. (15) & (17).

For a fixed ``E``, setting ``d E_hat / dK = 0`` on
``E_hat = A0 C0 K^2 / (C1 K - A1)`` (``C0 = (B0 E + B1)/E``,
``C1 = eps - A2 (E-1)``) gives the stationary point

    K* = 2 A1 / (eps - A2 (E - 1)),

clipped to ``[1, N]`` — eq. (15) (the paper's branch condition prints
``A1/...`` but the derivative vanishes at ``2 A1/...``; see DESIGN.md).

For a fixed ``K``, setting ``d E_hat / dE = 0`` gives the quadratic

    A2 K B0 E^2 + 2 A2 K B1 E - B1 C4 = 0,   C4 = eps K - A1 + A2 K,

whose positive root is the exact interior optimum.  The paper's printed
eq. (17), ``E* = (C4 B1 - A2 B0 K) / (2 A2 B1 K)``, does not satisfy this
first-order condition; both are implemented (``paper_formula=True``
selects the printed version) and the benchmark
``benchmarks/test_bench_ablation_estar.py`` quantifies the difference.
"""

from __future__ import annotations

import math

from repro.core.objective import EnergyObjective

__all__ = ["k_star", "e_star", "k_star_unclipped", "e_star_unclipped"]


def k_star_unclipped(objective: EnergyObjective, epochs: float) -> float:
    """The unconstrained stationary point ``2 A1 / (eps - A2 (E-1))``.

    Raises ``ValueError`` when the drift floor makes every K infeasible.
    """
    margin = objective.epsilon - objective.bound.a2 * (epochs - 1)
    if margin <= 0:
        raise ValueError(
            f"E={epochs} exceeds the drift limit: eps - A2(E-1) = {margin} <= 0"
        )
    if objective.bound.a1 == 0:
        # No gradient-variance term: energy strictly increases with K, so
        # the interior stationary point degenerates to the lower edge.
        return 1.0
    return 2.0 * objective.bound.a1 / margin


def k_star(objective: EnergyObjective, epochs: float) -> float:
    """Optimal continuous ``K`` for fixed ``E`` — eq. (15) with clipping.

    The result is clipped into ``[1, N]`` and, because the feasible region
    is open below at ``A1 / (eps - A2(E-1))``, additionally raised above
    the feasibility edge when clipping at 1 would leave the region.
    """
    candidate = k_star_unclipped(objective, epochs)
    lo, hi = objective.k_domain(epochs)
    return min(max(candidate, lo), hi)


def e_star_unclipped(
    objective: EnergyObjective, participants: float, paper_formula: bool = False
) -> float:
    """Interior stationary point of the objective in ``E`` for fixed ``K``.

    With ``A2 = 0`` the objective decreases in ``E`` towards the
    asymptote ``A0 K^2 B0 / (eps K - A1)``, so there is no interior
    stationary point and ``math.inf`` is returned (the caller clips).
    """
    a1, a2 = objective.bound.a1, objective.bound.a2
    b0, b1 = objective.energy.b0, objective.energy.b1
    eps, k = objective.epsilon, participants
    c4 = eps * k - a1 + a2 * k
    if c4 <= 0:
        raise ValueError(
            f"K={participants} is infeasible even at E=1 (C4={c4} <= 0)"
        )
    if a2 == 0:
        return math.inf
    if b1 == 0:
        # No per-round fixed cost: the objective A0 K^2 B0 / (C4 - A2 K E)
        # strictly increases in E, so the optimum is the lower edge.
        return 1.0
    if paper_formula:
        return (c4 * b1 - a2 * b0 * k) / (2.0 * a2 * b1 * k)
    # Positive root of A2 K B0 E^2 + 2 A2 K B1 E - B1 C4 = 0, written in
    # the cancellation-free form 2c / (-b - sqrt(D)): for very small A2
    # the naive (-b + sqrt(D)) / (2a) subtracts nearly equal numbers and
    # overflows/garbles the result.  Coefficients that underflow to zero
    # (subnormal A2) degrade to the corresponding limit.
    a_coef = a2 * k * b0
    b_coef = 2.0 * a2 * k * b1
    c_coef = -b1 * c4
    if a_coef == 0.0 and b_coef == 0.0:
        # Drift term numerically vanished: behave as A2 = 0.
        return math.inf
    if a_coef == 0.0:
        # B0 = 0 (or underflow): linear equation 2 A2 K B1 E = B1 C4.
        return -c_coef / b_coef
    discriminant = b_coef**2 - 4.0 * a_coef * c_coef
    denominator = -b_coef - math.sqrt(discriminant)
    if denominator == 0.0:
        return math.inf
    return 2.0 * c_coef / denominator


def e_star(
    objective: EnergyObjective, participants: float, paper_formula: bool = False
) -> float:
    """Optimal continuous ``E`` for fixed ``K`` — eq. (17) with clipping.

    Clips the stationary point into the feasible ``Z_E`` interval; with
    ``A2 = 0`` (unbounded domain) a cap of ``1e6`` epochs is applied so
    callers always receive a finite value.
    """
    candidate = e_star_unclipped(objective, participants, paper_formula)
    lo, hi = objective.e_domain(participants)
    if math.isinf(hi):
        hi = 1e6
    if math.isinf(candidate):
        return hi
    return min(max(candidate, lo), hi)
