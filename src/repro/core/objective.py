"""The energy-minimisation objective ``E[e_hat](K, E)`` — eqs. (12)-(13).

Substituting the optimal round count ``T*(K, E)`` (eq. (11)) into the
total-energy expression ``T * K * (B0 E + B1)`` yields the reduced
two-variable objective

    E_hat(K, E) = A0 * K^2 * (B0 E + B1)
                  / ((eps*K - A1 - A2*K*(E-1)) * E),

defined on the feasible region (13c).  Lemmas 1 and 2 of the paper show
it is strictly convex in each variable separately (biconvex, Theorem 1);
this module evaluates the objective, its analytic second derivatives, the
ACS search domains ``Z_K``/``Z_E``, and numeric biconvexity certificates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.convergence import ConvergenceBound
from repro.core.energy_model import EnergyParams

__all__ = ["EnergyObjective"]


@lru_cache(maxsize=128)
def _integer_grid(
    objective: "EnergyObjective",
    k_key: tuple[float, ...],
    e_key: tuple[float, ...],
) -> np.ndarray:
    """Memoized vectorized ``value_integer`` over a broadcast (K, E) grid.

    Every arithmetic step mirrors the scalar
    :meth:`EnergyObjective.value_integer` /
    :meth:`ConvergenceBound.is_feasible` expressions term for term
    (including association order), so each element equals the scalar
    result exactly.  Infeasible points hold NaN.  The returned array is
    read-only because it is shared by every caller with the same grid
    (``EnergyObjective`` is a hashable frozen dataclass, so the cache
    keys on the calibrated constants themselves).
    """
    k, e = np.broadcast_arrays(
        np.array(k_key, dtype=float), np.array(e_key, dtype=float)
    )
    a0, a1, a2 = objective.bound.a0, objective.bound.a1, objective.bound.a2
    eps = objective.epsilon
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        gap = a1 / k + a2 * (e - 1)
        feasible = (k >= 1) & (k <= objective.n_servers) & (e >= 1) & (eps > gap)
        denominator = (eps * k - a1 - a2 * k * (e - 1)) * e
        rounds = np.maximum(1.0, np.ceil(a0 * k / denominator))
        values = rounds * k * (objective.energy.b0 * e + objective.energy.b1)
    values = np.where(feasible, values, np.nan)
    values.setflags(write=False)
    return values

# Relative margin used to keep continuous search iterates strictly inside
# the open feasible region (13c), where the objective diverges at the edge.
_DOMAIN_MARGIN = 1e-9


@dataclass(frozen=True)
class EnergyObjective:
    """Reduced energy objective for a target accuracy ``epsilon``.

    Attributes:
        bound: the convergence constants ``(A0, A1, A2)``.
        energy: per-server energy constants providing ``B0``/``B1``.
        epsilon: target loss gap (constraint (6b)).
        n_servers: total number of edge servers ``N`` (upper limit on K).
    """

    bound: ConvergenceBound
    energy: EnergyParams
    epsilon: float
    n_servers: int

    def __post_init__(self) -> None:
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be positive; got {self.epsilon}")
        if self.n_servers < 1:
            raise ValueError(f"n_servers must be >= 1; got {self.n_servers}")

    # ------------------------------------------------------------------
    # Evaluation.
    # ------------------------------------------------------------------
    def is_feasible(self, participants: float, epochs: float) -> bool:
        """Whether ``(K, E)`` lies in the open region (13c) with ``K <= N``."""
        if participants < 1 or participants > self.n_servers or epochs < 1:
            return False
        return self.bound.is_feasible(self.epsilon, epochs, participants)

    def value(self, participants: float, epochs: float) -> float:
        """Continuous objective ``E_hat(K, E)`` (eq. (12))."""
        if not self.is_feasible(participants, epochs):
            raise ValueError(
                f"(K={participants}, E={epochs}) is infeasible for "
                f"epsilon={self.epsilon}, N={self.n_servers}"
            )
        rounds = self.bound.required_rounds(self.epsilon, epochs, participants)
        return rounds * participants * self.energy.round_energy(epochs)

    def value_integer(self, participants: int, epochs: int) -> float:
        """Energy with the *integer* round count ``ceil(T*)``.

        This is the energy a real deployment would pay, since rounds are
        discrete; it upper-bounds :meth:`value` by at most one round.
        """
        if participants != int(participants) or epochs != int(epochs):
            raise ValueError("participants and epochs must be integers")
        rounds = self.bound.required_rounds_int(self.epsilon, epochs, participants)
        return rounds * participants * self.energy.round_energy(epochs)

    def rounds(self, participants: float, epochs: float) -> float:
        """The continuous ``T*(K, E)`` used inside the objective."""
        return self.bound.required_rounds(self.epsilon, epochs, participants)

    def value_integer_grid(
        self,
        participants: np.ndarray | float,
        epochs: np.ndarray | float,
    ) -> np.ndarray:
        """Vectorized :meth:`value_integer` over a broadcast (K, E) grid.

        Accepts scalars or broadcastable arrays; returns a *read-only*
        array holding the integer-round energy at each point and NaN
        where the point is infeasible.  Elementwise identical to calling
        :meth:`is_feasible` / :meth:`value_integer` pointwise, but one
        numpy pass over the whole sweep, memoized per (constants, grid)
        — the K- and E-sweeps of Figs. 5-6 hit the cache on re-renders.
        """
        k = np.atleast_1d(np.asarray(participants, dtype=float))
        e = np.atleast_1d(np.asarray(epochs, dtype=float))
        return _integer_grid(self, tuple(k.tolist()), tuple(e.tolist()))

    # ------------------------------------------------------------------
    # Analytic curvature (Lemmas 1 and 2).
    # ------------------------------------------------------------------
    def d2_dk2(self, participants: float, epochs: float) -> float:
        """Second partial derivative in K — eq. (14).

        ``d^2 E_hat / dK^2 = 2 A0 A1^2 C0 / (C1 K - A1)^3`` with
        ``C0 = (B0 E + B1)/E`` and ``C1 = eps - A2 (E - 1)``; strictly
        positive everywhere on the feasible region.
        """
        if not self.is_feasible(participants, epochs):
            raise ValueError("point is infeasible")
        c0 = (self.energy.b0 * epochs + self.energy.b1) / epochs
        c1 = self.epsilon - self.bound.a2 * (epochs - 1)
        return (
            2.0
            * self.bound.a0
            * self.bound.a1**2
            * c0
            / (c1 * participants - self.bound.a1) ** 3
        )

    def d2_de2(self, participants: float, epochs: float) -> float:
        """Second partial derivative in E (Lemma 2), computed exactly.

        Writing ``g(E) = (B0 E + B1) / ((C4 - A2 K E) E)`` with
        ``C4 = eps K - A1 + A2 K``, the objective is
        ``A0 K^2 g(E)`` and its curvature follows from differentiating
        the quotient twice.  Positive on the feasible region.
        """
        if not self.is_feasible(participants, epochs):
            raise ValueError("point is infeasible")
        k = participants
        a0, a1, a2 = self.bound.a0, self.bound.a1, self.bound.a2
        b0, b1 = self.energy.b0, self.energy.b1
        c4 = self.epsilon * k - a1 + a2 * k
        d = (c4 - a2 * k * epochs) * epochs          # denominator D(E)
        d1 = c4 - 2.0 * a2 * k * epochs              # D'(E)
        d2 = -2.0 * a2 * k                           # D''(E)
        n = b0 * epochs + b1                         # numerator N(E)
        # (N/D)'' = (N'' D^2 - 2 N' D D' - N D D'' + 2 N D'^2) / D^3,
        # with N'' = 0 and N' = B0.
        second = (-2.0 * b0 * d * d1 - n * d * d2 + 2.0 * n * d1**2) / d**3
        return a0 * k**2 * second

    # ------------------------------------------------------------------
    # ACS search domains (§V-B).
    # ------------------------------------------------------------------
    def k_domain(self, epochs: float) -> tuple[float, float]:
        """Closed interval of feasible continuous K at fixed E (``Z_K``).

        The open constraint ``K > A1/(eps - A2(E-1))`` is tightened by a
        tiny relative margin so the returned interval is safe to evaluate.
        Raises ``ValueError`` when no feasible K <= N exists.
        """
        k_min = self.bound.min_feasible_participants(self.epsilon, epochs)
        lo = max(1.0, k_min * (1.0 + _DOMAIN_MARGIN) + _DOMAIN_MARGIN)
        hi = float(self.n_servers)
        if lo > hi:
            raise ValueError(
                f"no feasible K in [1, {self.n_servers}] for E={epochs}: "
                f"need K > {k_min}"
            )
        return lo, hi

    def e_domain(self, participants: float) -> tuple[float, float]:
        """Closed interval of feasible continuous E at fixed K (``Z_E``).

        The open upper limit ``E < (eps K - A1 + A2 K)/(A2 K)`` is
        tightened by a small margin; when ``A2 == 0`` the domain is
        unbounded above and ``math.inf`` is returned.
        """
        e_max = self.bound.max_feasible_epochs(self.epsilon, participants)
        if math.isinf(e_max):
            return 1.0, math.inf
        hi = e_max * (1.0 - _DOMAIN_MARGIN) - _DOMAIN_MARGIN
        if hi < 1.0:
            raise ValueError(
                f"no feasible E >= 1 for K={participants}: need E < {e_max}"
            )
        return 1.0, hi

    # ------------------------------------------------------------------
    # Numeric biconvexity certificates (Theorem 1 checks).
    # ------------------------------------------------------------------
    def certify_convex_in_k(self, epochs: float, n_points: int = 64) -> bool:
        """Check ``d2/dK2 > 0`` on a grid spanning the K-domain."""
        lo, hi = self.k_domain(epochs)
        if hi <= lo:
            return True
        grid = np.linspace(lo, hi, n_points)
        return all(self.d2_dk2(float(k), epochs) > 0 for k in grid)

    def certify_convex_in_e(
        self, participants: float, n_points: int = 64, e_cap: float = 1e4
    ) -> bool:
        """Check ``d2/dE2 > 0`` on a grid spanning the E-domain."""
        lo, hi = self.e_domain(participants)
        hi = min(hi, e_cap)
        if hi <= lo:
            return True
        grid = np.linspace(lo, hi, n_points)
        return all(self.d2_de2(participants, float(e)) > 0 for e in grid)
