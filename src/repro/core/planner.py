"""High-level planner: the one-call public API of EE-FEI.

:class:`EnergyPlanner` bundles the convergence bound, the energy
constants, and the system size into a single object that produces an
:class:`EnergyPlan` — the integer ``(K, E, T)`` schedule a deployment
should run, together with its predicted energy and the saving relative
to the ``(K=1, E=1)`` baseline the paper reports 49.8 % against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.acs import ACSResult, ACSSolver
from repro.core.baselines import PolicyResult, fixed_policy
from repro.core.convergence import ConvergenceBound
from repro.core.energy_model import EnergyParams
from repro.core.objective import EnergyObjective

__all__ = ["EnergyPlan", "EnergyPlanner"]


@dataclass(frozen=True)
class EnergyPlan:
    """The schedule EE-FEI recommends for one training task.

    Attributes:
        participants: number of edge servers per round ``K``.
        epochs: local epochs per round ``E``.
        rounds: global coordination rounds ``T``.
        predicted_energy: predicted total energy in joules.
        baseline_energy: predicted energy of the ``(K=1, E=1)`` policy,
            or ``None`` when that policy cannot reach the target.
        acs: the underlying solver result (iterate history etc.).
    """

    participants: int
    epochs: int
    rounds: int
    predicted_energy: float
    baseline_energy: float | None
    acs: ACSResult

    @property
    def savings_fraction(self) -> float | None:
        """Fractional saving vs the (1, 1) baseline (paper: 0.498)."""
        if self.baseline_energy is None or self.baseline_energy <= 0:
            return None
        return 1.0 - self.predicted_energy / self.baseline_energy

    def describe(self) -> str:
        """Human-readable one-paragraph summary of the plan."""
        lines = [
            f"EE-FEI plan: K={self.participants} edge servers/round, "
            f"E={self.epochs} local epochs, T={self.rounds} global rounds.",
            f"Predicted energy: {self.predicted_energy:.3f} J.",
        ]
        if self.savings_fraction is not None:
            lines.append(
                f"Saving vs (K=1, E=1) baseline: {100 * self.savings_fraction:.1f}% "
                f"(baseline {self.baseline_energy:.3f} J)."
            )
        return "\n".join(lines)


class EnergyPlanner:
    """Facade: calibrated constants in, optimal integer schedule out.

    Args:
        bound: convergence constants, typically from
            :func:`repro.core.calibration.fit_convergence_constants`.
        energy: per-server energy constants, typically from
            :func:`repro.core.calibration.fit_training_energy` plus the
            uplink/upload measurements.
        n_servers: system size ``N``.
    """

    def __init__(
        self, bound: ConvergenceBound, energy: EnergyParams, n_servers: int
    ) -> None:
        self.bound = bound
        self.energy = energy
        self.n_servers = n_servers

    def objective(self, epsilon: float) -> EnergyObjective:
        """Build the reduced objective for a target loss gap."""
        return EnergyObjective(
            bound=self.bound,
            energy=self.energy,
            epsilon=epsilon,
            n_servers=self.n_servers,
        )

    def baseline(self, epsilon: float) -> PolicyResult | None:
        """The (K=1, E=1) reference policy, or ``None`` when infeasible."""
        objective = self.objective(epsilon)
        if not objective.is_feasible(1, 1):
            return None
        return fixed_policy(objective, 1, 1, name="baseline(K=1,E=1)")

    def plan(
        self,
        epsilon: float,
        residual: float = 1e-9,
        k0: float | None = None,
        e0: float | None = None,
    ) -> EnergyPlan:
        """Solve for the energy-optimal integer ``(K, E, T)`` schedule.

        Raises ``ValueError`` when no ``(K, E)`` with ``K <= N`` can
        reach the target accuracy.
        """
        objective = self.objective(epsilon)
        solver = ACSSolver(objective, residual=residual)
        result = solver.solve(k0=k0, e0=e0, round_to_integers=True)
        assert result.participants_int is not None  # round_to_integers=True
        assert result.epochs_int is not None
        assert result.rounds_int is not None
        assert result.energy_int is not None
        baseline = self.baseline(epsilon)
        return EnergyPlan(
            participants=result.participants_int,
            epochs=result.epochs_int,
            rounds=result.rounds_int,
            predicted_energy=result.energy_int,
            baseline_energy=baseline.energy if baseline else None,
            acs=result,
        )
