"""Synthetic stand-in for the MNIST dataset.

The paper evaluates FEI on MNIST (70 000 gray-scale 28x28 images of
hand-written digits; 60 000 train / 10 000 test).  MNIST itself is not
available offline, so this module generates a deterministic synthetic
look-alike: each of the 10 classes is rendered from a fixed digit glyph
prototype, then perturbed per-sample with random translation, intensity
scaling, and pixel noise.

For a *linear* model (multinomial logistic regression, as used in the
paper) the resulting task has the properties the evaluation relies on:

* 784-dimensional inputs in ``[0, 1]`` and 10 balanced classes,
* classes are mostly linearly separable but overlap enough that accuracy
  climbs gradually over many SGD rounds (so the K/E/T convergence
  trade-offs of Fig. 4 are visible),
* i.i.d. sampling across edge servers, matching the paper's uniform
  60 000-sample allocation over 20 servers.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset

__all__ = [
    "IMAGE_SIDE",
    "N_FEATURES",
    "N_CLASSES",
    "render_glyph",
    "generate_synthetic_mnist",
    "load_synthetic_mnist",
]

IMAGE_SIDE = 28
N_FEATURES = IMAGE_SIDE * IMAGE_SIDE
N_CLASSES = 10

# 7x5 bitmap prototypes for the digits 0-9 ('#' = ink).  These mimic a
# seven-segment-like hand-written style; they only need to be mutually
# distinguishable under noise, not beautiful.
_GLYPHS: dict[int, tuple[str, ...]] = {
    0: (" ### ", "#   #", "#   #", "#   #", "#   #", "#   #", " ### "),
    1: ("  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "),
    2: (" ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####"),
    3: (" ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### "),
    4: ("   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # "),
    5: ("#####", "#    ", "#### ", "    #", "    #", "#   #", " ### "),
    6: (" ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### "),
    7: ("#####", "    #", "   # ", "  #  ", "  #  ", " #   ", " #   "),
    8: (" ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### "),
    9: (" ### ", "#   #", "#   #", " ####", "    #", "    #", " ### "),
}

_GLYPH_ROWS = 7
_GLYPH_COLS = 5
# Upsampling factors chosen so the rendered glyph occupies the centre of the
# 28x28 canvas with a margin that leaves room for +-3 pixel translations.
_SCALE_Y = 3
_SCALE_X = 4
_MAX_SHIFT = 3


def render_glyph(digit: int) -> np.ndarray:
    """Render the clean 28x28 prototype image for ``digit``.

    Returns a float32 array with values in ``{0.0, 1.0}`` (ink mask) of
    shape ``(28, 28)``.
    """
    if digit not in _GLYPHS:
        raise ValueError(f"digit must be in 0..9; got {digit}")
    bitmap = np.array(
        [[1.0 if ch == "#" else 0.0 for ch in row] for row in _GLYPHS[digit]],
        dtype=np.float32,
    )
    scaled = np.kron(bitmap, np.ones((_SCALE_Y, _SCALE_X), dtype=np.float32))
    canvas = np.zeros((IMAGE_SIDE, IMAGE_SIDE), dtype=np.float32)
    top = (IMAGE_SIDE - scaled.shape[0]) // 2
    left = (IMAGE_SIDE - scaled.shape[1]) // 2
    canvas[top : top + scaled.shape[0], left : left + scaled.shape[1]] = scaled
    return canvas


def _perturb(
    base: np.ndarray,
    n: int,
    rng: np.random.Generator,
    noise_std: float,
) -> np.ndarray:
    """Produce ``n`` noisy translated copies of ``base`` (shape (28, 28)).

    Translation is applied with :func:`numpy.roll`, vectorised by grouping
    samples that share the same (dy, dx) offset, so generating the full
    60 000-sample training set stays fast.
    """
    shifts_y = rng.integers(-_MAX_SHIFT, _MAX_SHIFT + 1, size=n)
    shifts_x = rng.integers(-_MAX_SHIFT, _MAX_SHIFT + 1, size=n)
    out = np.empty((n, IMAGE_SIDE, IMAGE_SIDE), dtype=np.float32)
    for dy in range(-_MAX_SHIFT, _MAX_SHIFT + 1):
        for dx in range(-_MAX_SHIFT, _MAX_SHIFT + 1):
            mask = (shifts_y == dy) & (shifts_x == dx)
            if not mask.any():
                continue
            out[mask] = np.roll(base, (dy, dx), axis=(0, 1))
    intensity = rng.uniform(0.6, 1.0, size=(n, 1, 1)).astype(np.float32)
    out *= intensity
    out += rng.normal(0.0, noise_std, size=out.shape).astype(np.float32)
    np.clip(out, 0.0, 1.0, out=out)
    return out


def generate_synthetic_mnist(
    n_samples: int,
    seed: int = 0,
    noise_std: float = 0.25,
    label_noise: float = 0.08,
) -> Dataset:
    """Generate a synthetic-MNIST dataset of ``n_samples`` samples.

    Classes are balanced (up to rounding) and the sample order is shuffled.

    Args:
        n_samples: total number of images to generate.
        seed: seed for the deterministic generator.
        noise_std: standard deviation of the additive pixel noise.  The
            default 0.25 makes the task hard enough for a linear model that
            accuracy improves over hundreds of rounds, as in the paper's
            Fig. 4.
        label_noise: fraction of samples whose label is re-drawn uniformly
            at random.  This makes the task *non-separable*, like real
            MNIST under logistic regression: without it the synthetic task
            is linearly separable, the minimum loss is ~0, the stochastic
            gradients vanish at the optimum (``sigma^2 = 0``), and the
            paper's variance (``A1``) and drift (``A2``) terms would be
            degenerate.  The default 0.08 caps achievable accuracy around
            the ~92-93 % that logistic regression reaches on MNIST.

    Returns:
        A :class:`~repro.data.dataset.Dataset` with 784 features per sample.
    """
    if n_samples < 1:
        raise ValueError(f"n_samples must be positive; got {n_samples}")
    if not 0.0 <= label_noise < 1.0:
        raise ValueError(f"label_noise must be in [0, 1); got {label_noise}")
    rng = np.random.default_rng(seed)
    per_class = np.full(N_CLASSES, n_samples // N_CLASSES, dtype=np.int64)
    per_class[: n_samples % N_CLASSES] += 1

    images = np.empty((n_samples, IMAGE_SIDE, IMAGE_SIDE), dtype=np.float32)
    labels = np.empty(n_samples, dtype=np.int64)
    cursor = 0
    for digit in range(N_CLASSES):
        count = int(per_class[digit])
        if count == 0:
            continue
        base = render_glyph(digit)
        images[cursor : cursor + count] = _perturb(base, count, rng, noise_std)
        labels[cursor : cursor + count] = digit
        cursor += count

    if label_noise > 0:
        # Dedicated stream so changing label_noise never perturbs the
        # images or the sample order drawn from the main stream.
        label_rng = np.random.default_rng([seed, 0x1AB31])
        flip = label_rng.random(n_samples) < label_noise
        labels[flip] = label_rng.integers(0, N_CLASSES, size=int(flip.sum()))

    perm = rng.permutation(n_samples)
    features = images.reshape(n_samples, N_FEATURES)[perm]
    return Dataset(features, labels[perm], N_CLASSES)


def load_synthetic_mnist(
    n_train: int = 60_000,
    n_test: int = 10_000,
    seed: int = 0,
    noise_std: float = 0.25,
    label_noise: float = 0.08,
) -> tuple[Dataset, Dataset]:
    """Generate the (train, test) pair matching the paper's MNIST split.

    Train and test sets are generated from independent random streams of
    the same seed so they are disjoint draws of the same distribution.
    """
    train = generate_synthetic_mnist(
        n_train, seed=seed, noise_std=noise_std, label_noise=label_noise
    )
    test = generate_synthetic_mnist(
        n_test, seed=seed + 1, noise_std=noise_std, label_noise=label_noise
    )
    return train, test
