"""Dataset substrate: containers and the synthetic-MNIST generator."""

from repro.data.dataset import Dataset, train_test_split
from repro.data.synthetic_mnist import (
    IMAGE_SIDE,
    N_CLASSES,
    N_FEATURES,
    generate_synthetic_mnist,
    load_synthetic_mnist,
    render_glyph,
)

__all__ = [
    "Dataset",
    "train_test_split",
    "IMAGE_SIDE",
    "N_CLASSES",
    "N_FEATURES",
    "generate_synthetic_mnist",
    "load_synthetic_mnist",
    "render_glyph",
]
