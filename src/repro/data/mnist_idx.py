"""Loader for real MNIST in IDX format (optional, offline-friendly).

The reproduction ships a synthetic MNIST stand-in because the real
dataset is not available in the offline build environment.  If you *do*
have the original IDX files (``train-images-idx3-ubyte`` etc., possibly
gzipped), this module loads them into the same
:class:`~repro.data.dataset.Dataset` container, so every experiment can
be re-run on the true data with one argument change.

IDX format (Le Cun's spec): big-endian magic ``0x00 0x00 <dtype>
<ndims>``, then one 32-bit big-endian size per dimension, then raw data.
MNIST uses dtype ``0x08`` (unsigned byte) with 3 dims for images and 1
for labels.
"""

from __future__ import annotations

import gzip
import struct
from pathlib import Path

import numpy as np

from repro.data.dataset import Dataset
from repro.data.synthetic_mnist import N_CLASSES

__all__ = ["read_idx", "load_mnist_idx", "mnist_files_present"]

_DTYPE_CODES = {
    0x08: np.dtype(">u1"),
    0x09: np.dtype(">i1"),
    0x0B: np.dtype(">i2"),
    0x0C: np.dtype(">i4"),
    0x0D: np.dtype(">f4"),
    0x0E: np.dtype(">f8"),
}

# Canonical file names, with and without .gz.
_FILES = {
    "train_images": "train-images-idx3-ubyte",
    "train_labels": "train-labels-idx1-ubyte",
    "test_images": "t10k-images-idx3-ubyte",
    "test_labels": "t10k-labels-idx1-ubyte",
}


def _read_bytes(path: Path) -> bytes:
    if path.suffix == ".gz":
        return gzip.decompress(path.read_bytes())
    return path.read_bytes()


def read_idx(path: str | Path) -> np.ndarray:
    """Parse one IDX file into a numpy array (native byte order)."""
    raw = _read_bytes(Path(path))
    if len(raw) < 4:
        raise ValueError(f"{path}: too short to be an IDX file")
    zero0, zero1, dtype_code, ndims = struct.unpack(">BBBB", raw[:4])
    if zero0 != 0 or zero1 != 0:
        raise ValueError(f"{path}: bad IDX magic (leading bytes not zero)")
    if dtype_code not in _DTYPE_CODES:
        raise ValueError(f"{path}: unknown IDX dtype code 0x{dtype_code:02x}")
    if ndims < 1 or ndims > 4:
        raise ValueError(f"{path}: implausible dimension count {ndims}")
    header_end = 4 + 4 * ndims
    if len(raw) < header_end:
        raise ValueError(f"{path}: truncated IDX header")
    shape = struct.unpack(f">{ndims}I", raw[4:header_end])
    dtype = _DTYPE_CODES[dtype_code]
    expected = int(np.prod(shape)) * dtype.itemsize
    body = raw[header_end:]
    if len(body) != expected:
        raise ValueError(
            f"{path}: body has {len(body)} bytes, expected {expected} "
            f"for shape {shape}"
        )
    array = np.frombuffer(body, dtype=dtype).reshape(shape)
    return array.astype(dtype.newbyteorder("="), copy=False)


def _find(directory: Path, stem: str) -> Path | None:
    for candidate in (directory / stem, directory / f"{stem}.gz"):
        if candidate.exists():
            return candidate
    return None


def mnist_files_present(directory: str | Path) -> bool:
    """Whether all four MNIST IDX files exist under ``directory``."""
    directory = Path(directory)
    return all(_find(directory, stem) is not None for stem in _FILES.values())


def load_mnist_idx(directory: str | Path) -> tuple[Dataset, Dataset]:
    """Load the real MNIST train/test split from IDX files.

    Pixels are scaled to ``[0, 1]`` float32, matching the synthetic
    generator's range, so models and energy experiments are directly
    comparable.

    Raises ``FileNotFoundError`` when any of the four files is missing.
    """
    directory = Path(directory)
    paths = {}
    for key, stem in _FILES.items():
        found = _find(directory, stem)
        if found is None:
            raise FileNotFoundError(
                f"missing MNIST file {stem}(.gz) under {directory}"
            )
        paths[key] = found

    def build(images_key: str, labels_key: str) -> Dataset:
        images = read_idx(paths[images_key])
        labels = read_idx(paths[labels_key])
        if images.ndim != 3:
            raise ValueError(f"{paths[images_key]}: expected 3-D image tensor")
        if labels.ndim != 1 or labels.shape[0] != images.shape[0]:
            raise ValueError(
                f"{paths[labels_key]}: label count does not match images"
            )
        n = images.shape[0]
        features = images.reshape(n, -1).astype(np.float32) / 255.0
        return Dataset(features, labels.astype(np.int64), N_CLASSES)

    return build("train_images", "train_labels"), build("test_images", "test_labels")
