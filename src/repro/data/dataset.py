"""Dataset containers for the FEI substrate.

The paper trains multinomial logistic regression on MNIST (784-dimensional
inputs, 10 classes).  This module provides a small, dependency-free dataset
abstraction used by the synthetic-MNIST generator, the partitioners, and the
federated-learning substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

__all__ = ["Dataset", "train_test_split"]


@dataclass(frozen=True)
class Dataset:
    """An in-memory supervised classification dataset.

    Attributes:
        features: float array of shape ``(n_samples, n_features)``.
        labels: int array of shape ``(n_samples,)`` with values in
            ``[0, n_classes)``.
        n_classes: number of distinct classes the labels may take.  This is
            carried explicitly (rather than inferred from ``labels``) so that
            a partition shard that happens to miss a class still trains a
            model with the full output dimension.
    """

    features: np.ndarray
    labels: np.ndarray
    n_classes: int

    def __post_init__(self) -> None:
        features = np.asarray(self.features)
        labels = np.asarray(self.labels)
        if features.ndim != 2:
            raise ValueError(
                f"features must be 2-D (n_samples, n_features); got shape {features.shape}"
            )
        if labels.ndim != 1:
            raise ValueError(f"labels must be 1-D; got shape {labels.shape}")
        if features.shape[0] != labels.shape[0]:
            raise ValueError(
                "features and labels disagree on the number of samples: "
                f"{features.shape[0]} != {labels.shape[0]}"
            )
        if self.n_classes < 1:
            raise ValueError(f"n_classes must be positive; got {self.n_classes}")
        if labels.size and (labels.min() < 0 or labels.max() >= self.n_classes):
            raise ValueError(
                f"labels must lie in [0, {self.n_classes}); "
                f"got range [{labels.min()}, {labels.max()}]"
            )
        object.__setattr__(self, "features", features)
        object.__setattr__(self, "labels", labels.astype(np.int64, copy=False))

    def __len__(self) -> int:
        return self.features.shape[0]

    @property
    def n_features(self) -> int:
        """Dimensionality of each input sample."""
        return self.features.shape[1]

    def subset(self, indices: Sequence[int] | np.ndarray) -> "Dataset":
        """Return a new dataset containing the samples at ``indices``."""
        idx = np.asarray(indices, dtype=np.int64)
        return Dataset(self.features[idx], self.labels[idx], self.n_classes)

    def shuffled(self, rng: np.random.Generator) -> "Dataset":
        """Return a copy with samples in a random order drawn from ``rng``."""
        perm = rng.permutation(len(self))
        return self.subset(perm)

    def take(self, n: int) -> "Dataset":
        """Return the first ``n`` samples (all samples if ``n`` exceeds size)."""
        if n < 0:
            raise ValueError(f"n must be non-negative; got {n}")
        return self.subset(np.arange(min(n, len(self))))

    def class_counts(self) -> np.ndarray:
        """Return an array of length ``n_classes`` with per-class sample counts."""
        return np.bincount(self.labels, minlength=self.n_classes)

    def batches(
        self, batch_size: int, rng: np.random.Generator | None = None
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(features, labels)`` mini-batches.

        The paper uses full-batch SGD (one batch per epoch); pass
        ``batch_size >= len(self)`` for that behaviour.  When ``rng`` is
        given, samples are shuffled before batching.

        Batches are index-based: a shuffled epoch gathers only one
        permutation vector and slices it per batch (never materialising
        a shuffled copy of the feature matrix), and the unshuffled path
        yields zero-copy views.  Batch *contents* for a given ``rng``
        are identical to gathering from a shuffled copy.
        """
        if batch_size < 1:
            raise ValueError(f"batch_size must be positive; got {batch_size}")
        if rng is None:
            for start in range(0, len(self), batch_size):
                stop = start + batch_size
                yield self.features[start:stop], self.labels[start:stop]
            return
        order = rng.permutation(len(self))
        for start in range(0, len(self), batch_size):
            idx = order[start : start + batch_size]
            yield self.features[idx], self.labels[idx]

    def merged_with(self, other: "Dataset") -> "Dataset":
        """Return the concatenation of this dataset with ``other``."""
        if self.n_classes != other.n_classes:
            raise ValueError(
                f"cannot merge datasets with different n_classes: "
                f"{self.n_classes} != {other.n_classes}"
            )
        if self.n_features != other.n_features:
            raise ValueError(
                f"cannot merge datasets with different n_features: "
                f"{self.n_features} != {other.n_features}"
            )
        return Dataset(
            np.concatenate([self.features, other.features]),
            np.concatenate([self.labels, other.labels]),
            self.n_classes,
        )


def train_test_split(
    dataset: Dataset, test_fraction: float, rng: np.random.Generator
) -> tuple[Dataset, Dataset]:
    """Randomly split ``dataset`` into train and test subsets.

    Args:
        dataset: the dataset to split.
        test_fraction: fraction of samples assigned to the test set,
            in ``(0, 1)``.
        rng: randomness source for the permutation.

    Returns:
        ``(train, test)`` datasets covering all samples exactly once.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1); got {test_fraction}")
    perm = rng.permutation(len(dataset))
    n_test = int(round(len(dataset) * test_fraction))
    n_test = max(1, min(len(dataset) - 1, n_test))
    return dataset.subset(perm[n_test:]), dataset.subset(perm[:n_test])
