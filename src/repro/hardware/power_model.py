"""Power states of an edge server across the four round steps (Fig. 3).

The paper's measurements show each Raspberry Pi cycling through four
power plateaus per global round:

1. *Waiting* — idle at 3.600 W;
2. *Model Downloading* — 4.286 W average;
3. *Local Model Training* — 5.553 W, independent of ``E`` and ``n_k``
   (only the *duration* grows with them — Table I);
4. *Local Model Uploading* — 5.015 W.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core import constants

__all__ = ["RoundPhase", "StepPowers"]


class RoundPhase(enum.Enum):
    """The four steps of one global coordination round at an edge server."""

    WAITING = "waiting"
    DOWNLOADING = "downloading"
    TRAINING = "training"
    UPLOADING = "uploading"


@dataclass(frozen=True)
class StepPowers:
    """Average power draw (watts) in each round phase.

    Defaults are the paper's measured Raspberry Pi 4B values.
    """

    waiting_w: float = constants.POWER_WAITING_W
    downloading_w: float = constants.POWER_DOWNLOADING_W
    training_w: float = constants.POWER_TRAINING_W
    uploading_w: float = constants.POWER_UPLOADING_W

    def __post_init__(self) -> None:
        for name in ("waiting_w", "downloading_w", "training_w", "uploading_w"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive; got {getattr(self, name)}")

    def power_for(self, phase: RoundPhase) -> float:
        """Average power during ``phase``."""
        return {
            RoundPhase.WAITING: self.waiting_w,
            RoundPhase.DOWNLOADING: self.downloading_w,
            RoundPhase.TRAINING: self.training_w,
            RoundPhase.UPLOADING: self.uploading_w,
        }[phase]

    def scaled(self, factor: float) -> "StepPowers":
        """A device whose every phase draws ``factor`` times the power.

        Used to model heterogeneous hardware (e.g. a faster but hungrier
        edge box) in the heterogeneity extension.
        """
        if factor <= 0:
            raise ValueError(f"factor must be positive; got {factor}")
        return StepPowers(
            waiting_w=self.waiting_w * factor,
            downloading_w=self.downloading_w * factor,
            training_w=self.training_w * factor,
            uploading_w=self.uploading_w * factor,
        )
