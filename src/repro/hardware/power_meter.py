"""Simulated POWER-Z KM001C USB multimeter.

The paper plugs one KM001C into the power port of every Raspberry Pi and
samples voltage, current and power at 1 kHz.  The simulated meter samples
a :class:`~repro.sim.processes.StepProcess` power signal on a uniform
grid, adds optional measurement noise, and reports the same triple of
time series the physical instrument logs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.constants import POWER_SAMPLE_RATE_HZ
from repro.hardware.trace import PowerTrace
from repro.obs.observer import active_or_none
from repro.sim.processes import StepProcess

if TYPE_CHECKING:
    from repro.obs.observer import Observer

__all__ = ["MeterConfig", "PowerMeter"]


@dataclass(frozen=True)
class MeterConfig:
    """Measurement characteristics of the simulated multimeter.

    Attributes:
        sample_rate_hz: sampling frequency (paper: 1 kHz).
        nominal_voltage_v: USB bus voltage; the RPi 4B runs at 5.1 V.
        power_noise_std_w: standard deviation of additive Gaussian noise
            on the power readings.  The KM001C resolves ~0.01 W; the
            default 0.02 W models quantisation plus supply ripple.
        voltage_noise_std_v: noise on the voltage readings.
    """

    sample_rate_hz: float = POWER_SAMPLE_RATE_HZ
    nominal_voltage_v: float = 5.1
    power_noise_std_w: float = 0.02
    voltage_noise_std_v: float = 0.005

    def __post_init__(self) -> None:
        if self.sample_rate_hz <= 0:
            raise ValueError(f"sample_rate_hz must be positive; got {self.sample_rate_hz}")
        if self.nominal_voltage_v <= 0:
            raise ValueError(
                f"nominal_voltage_v must be positive; got {self.nominal_voltage_v}"
            )
        if self.power_noise_std_w < 0 or self.voltage_noise_std_v < 0:
            raise ValueError("noise standard deviations must be non-negative")


class PowerMeter:
    """Samples a power :class:`StepProcess` into a :class:`PowerTrace`.

    With an ``observer`` attached, every recording increments the
    ``meter.samples`` counter and books the *ground-truth* per-phase
    energy of the metered process (exact segment integrals, before
    measurement noise) into ``meter.energy_joules{phase=...}`` — the
    meter-side twin of the model-side ``energy.joules`` counters.
    """

    def __init__(
        self,
        config: MeterConfig | None = None,
        rng: np.random.Generator | None = None,
        observer: "Observer | None" = None,
    ) -> None:
        self.config = config or MeterConfig()
        noisy = (
            self.config.power_noise_std_w > 0 or self.config.voltage_noise_std_v > 0
        )
        if noisy and rng is None:
            raise ValueError("a noisy meter requires an rng")
        self._rng = rng
        self._observer = active_or_none(observer)

    def record(self, process: StepProcess) -> PowerTrace:
        """Sample the full span of ``process`` at the configured rate.

        The first sample lands on the process start and the grid is
        uniform at ``1 / sample_rate_hz``; the final partial interval is
        included so short processes still get >= 2 samples.
        """
        if process.duration <= 0:
            raise ValueError("cannot record an empty power process")
        dt = 1.0 / self.config.sample_rate_hz
        n_samples = max(2, int(np.floor(process.duration / dt)) + 1)
        times = process.start_time + dt * np.arange(n_samples)
        # Keep the final sample inside the process span.
        times = times[times <= process.end_time]
        if times.size < 2:
            times = np.array([process.start_time, process.end_time])
        power = process.values_at(times)
        voltage = np.full_like(power, self.config.nominal_voltage_v)
        if self._rng is not None:
            if self.config.power_noise_std_w > 0:
                power = power + self._rng.normal(
                    0.0, self.config.power_noise_std_w, size=power.shape
                )
            if self.config.voltage_noise_std_v > 0:
                voltage = voltage + self._rng.normal(
                    0.0, self.config.voltage_noise_std_v, size=voltage.shape
                )
        power = np.maximum(power, 0.0)
        current = power / voltage
        if self._observer is not None:
            self._observer.counter("meter.samples").inc(times.size)
            phase_energy: dict[str, float] = {}
            for segment in process.segments:
                key = segment.label or "unlabelled"
                phase_energy[key] = (
                    phase_energy.get(key, 0.0) + segment.duration * segment.value
                )
            for phase, joules in phase_energy.items():
                self._observer.counter("meter.energy_joules", phase=phase).inc(
                    joules
                )
            self._observer.emit(
                "meter.record",
                duration_s=process.duration,
                n_samples=int(times.size),
                sample_rate_hz=self.config.sample_rate_hz,
            )
        return PowerTrace(
            times=times, power_w=power, voltage_v=voltage, current_a=current
        )
