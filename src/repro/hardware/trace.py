"""Power traces: what the POWER-Z KM001C multimeter records.

A trace is a uniformly sampled time series of (voltage, current, power)
triples.  The paper integrates traces into energy (power x duration of
the whole training process) and inspects the per-step plateaus of Fig. 3;
this module supports both along with phase segmentation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["PowerTrace"]


@dataclass(frozen=True)
class PowerTrace:
    """A sampled power measurement.

    Attributes:
        times: sample instants in seconds, strictly increasing, uniform.
        power_w: instantaneous power at each instant.
        voltage_v: bus voltage at each instant.
        current_a: current at each instant (``power / voltage``).
    """

    times: np.ndarray
    power_w: np.ndarray
    voltage_v: np.ndarray
    current_a: np.ndarray

    def __post_init__(self) -> None:
        arrays = {
            "times": np.asarray(self.times, dtype=float),
            "power_w": np.asarray(self.power_w, dtype=float),
            "voltage_v": np.asarray(self.voltage_v, dtype=float),
            "current_a": np.asarray(self.current_a, dtype=float),
        }
        n = arrays["times"].size
        if n < 2:
            raise ValueError("trace needs at least two samples")
        for name, arr in arrays.items():
            if arr.shape != (n,):
                raise ValueError(f"{name} must be 1-D with {n} samples; got {arr.shape}")
            object.__setattr__(self, name, arr)
        if not np.all(np.diff(arrays["times"]) > 0):
            raise ValueError("times must be strictly increasing")

    def __len__(self) -> int:
        return int(self.times.size)

    @property
    def duration(self) -> float:
        """Span of the trace in seconds."""
        return float(self.times[-1] - self.times[0])

    @property
    def sample_rate(self) -> float:
        """Mean sampling rate in Hz."""
        return (len(self) - 1) / self.duration

    def energy(self) -> float:
        """Trapezoidal integral of power over time, in joules."""
        return float(np.trapezoid(self.power_w, self.times))

    def mean_power(self) -> float:
        """Time-averaged power in watts."""
        return self.energy() / self.duration

    def peak_power(self) -> float:
        """Maximum sampled power in watts."""
        return float(self.power_w.max())

    def between(self, start: float, end: float) -> "PowerTrace":
        """Sub-trace of samples with ``start <= t <= end``."""
        if end <= start:
            raise ValueError(f"need end > start; got [{start}, {end}]")
        mask = (self.times >= start) & (self.times <= end)
        if mask.sum() < 2:
            raise ValueError(f"fewer than two samples inside [{start}, {end}]")
        return PowerTrace(
            self.times[mask],
            self.power_w[mask],
            self.voltage_v[mask],
            self.current_a[mask],
        )

    def concatenated_with(self, other: "PowerTrace") -> "PowerTrace":
        """Join two traces recorded back to back (other must start later)."""
        if other.times[0] <= self.times[-1]:
            raise ValueError(
                "other trace must start strictly after this trace ends"
            )
        return PowerTrace(
            np.concatenate([self.times, other.times]),
            np.concatenate([self.power_w, other.power_w]),
            np.concatenate([self.voltage_v, other.voltage_v]),
            np.concatenate([self.current_a, other.current_a]),
        )

    def detect_plateaus(self, tolerance_w: float = 0.2) -> list[tuple[float, float, float]]:
        """Segment the trace into approximately constant-power plateaus.

        Returns ``(start_time, end_time, mean_power)`` per plateau.  Used
        by the Fig. 3 analysis to recover the four round steps from a raw
        trace, mirroring how the paper reads its measurements.
        """
        if tolerance_w <= 0:
            raise ValueError(f"tolerance_w must be positive; got {tolerance_w}")
        breaks = np.flatnonzero(np.abs(np.diff(self.power_w)) > tolerance_w)
        starts = np.concatenate([[0], breaks + 1])
        ends = np.concatenate([breaks, [len(self) - 1]])
        plateaus = []
        for lo, hi in zip(starts, ends):
            if hi <= lo:
                continue
            plateaus.append(
                (
                    float(self.times[lo]),
                    float(self.times[hi]),
                    float(self.power_w[lo : hi + 1].mean()),
                )
            )
        return plateaus
