"""Simulated hardware prototype: Raspberry Pis, power meters, testbed."""

from repro.hardware.analysis import (
    PhaseEstimate,
    RoundEstimate,
    TraceAnalysis,
    analyze_trace,
)
from repro.hardware.power_meter import MeterConfig, PowerMeter
from repro.hardware.power_model import RoundPhase, StepPowers
from repro.hardware.prototype import (
    HardwarePrototype,
    PrototypeConfig,
    PrototypeResult,
)
from repro.hardware.raspberry_pi import (
    PiTimingConfig,
    RaspberryPiEdgeServer,
    RoundTiming,
)
from repro.hardware.trace import PowerTrace
from repro.hardware.trace_io import (
    load_trace_csv,
    save_trace_csv,
    trace_from_csv,
    trace_to_csv,
)

__all__ = [
    "PhaseEstimate",
    "RoundEstimate",
    "TraceAnalysis",
    "analyze_trace",
    "MeterConfig",
    "PowerMeter",
    "RoundPhase",
    "StepPowers",
    "HardwarePrototype",
    "PrototypeConfig",
    "PrototypeResult",
    "PiTimingConfig",
    "RaspberryPiEdgeServer",
    "RoundTiming",
    "PowerTrace",
    "load_trace_csv",
    "save_trace_csv",
    "trace_from_csv",
    "trace_to_csv",
]
