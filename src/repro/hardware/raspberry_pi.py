"""Timing and power model of one Raspberry Pi 4B edge server.

The substitution for the paper's physical testbed: every quantity the
paper measures on real hardware is generated here from the published
measurement constants.

* Training duration follows Table I's law ``t = E * (tau0 * n + tau1)``
  with ``tau = c / P_train`` (the paper fits ``c0 = 7.79e-5`` J per
  sample-epoch and ``c1 = 3.34e-3`` J per epoch at 5.553 W).
* Download/upload durations come from the model size and the WiFi
  channel.
* Each phase draws the constant power of Fig. 3, so a round is a
  four-segment :class:`~repro.sim.processes.StepProcess`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import constants
from repro.hardware.power_model import RoundPhase, StepPowers
from repro.net.channel import ChannelConfig, WirelessChannel
from repro.net.messages import ModelMessage
from repro.sim.processes import StepProcess

__all__ = ["PiTimingConfig", "RoundTiming", "RaspberryPiEdgeServer"]


@dataclass(frozen=True)
class PiTimingConfig:
    """Duration model of the four round phases on one device.

    Attributes:
        tau0: training seconds per sample-epoch (paper fit: c0 / 5.553 W).
        tau1: training seconds per epoch independent of data size.
        waiting_s: time spent idle before the coordinator dispatches the
            round (depends on the coordinator's schedule; the Fig. 3
            trace shows roughly a second between rounds).
        jitter_fraction: relative standard deviation of multiplicative
            log-normal-ish jitter applied to phase durations when an rng
            is supplied — real SoCs vary run to run.
    """

    tau0: float = constants.TAU0_SECONDS_PER_SAMPLE_EPOCH
    tau1: float = constants.TAU1_SECONDS_PER_EPOCH
    waiting_s: float = 1.0
    jitter_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.tau0 <= 0 or self.tau1 <= 0:
            raise ValueError(
                f"tau0 and tau1 must be positive; got {self.tau0}, {self.tau1}"
            )
        if self.waiting_s < 0:
            raise ValueError(f"waiting_s must be non-negative; got {self.waiting_s}")
        if not 0.0 <= self.jitter_fraction < 0.5:
            raise ValueError(
                f"jitter_fraction must be in [0, 0.5); got {self.jitter_fraction}"
            )


@dataclass(frozen=True)
class RoundTiming:
    """Durations of one round's four phases at one edge server."""

    waiting_s: float
    downloading_s: float
    training_s: float
    uploading_s: float

    @property
    def total_s(self) -> float:
        return self.waiting_s + self.downloading_s + self.training_s + self.uploading_s


class RaspberryPiEdgeServer:
    """One simulated edge server: timing + power for FEI rounds.

    Args:
        server_id: identity within the testbed.
        timing: phase-duration model.
        powers: phase-power model.
        channel: WiFi link used for model download/upload; defaults to
            the testbed's standard channel.
        rng: randomness source for duration jitter (only needed when
            ``timing.jitter_fraction > 0``).
    """

    def __init__(
        self,
        server_id: int,
        timing: PiTimingConfig | None = None,
        powers: StepPowers | None = None,
        channel: WirelessChannel | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.server_id = server_id
        self.timing = timing or PiTimingConfig()
        self.powers = powers or StepPowers()
        self.channel = channel or WirelessChannel(ChannelConfig())
        if self.timing.jitter_fraction > 0 and rng is None:
            raise ValueError("jitter requires an rng")
        self._rng = rng

    # ------------------------------------------------------------------
    # Durations.
    # ------------------------------------------------------------------
    def training_duration(self, epochs: int, n_samples: int) -> float:
        """Step-(3) duration — the law behind Table I."""
        if epochs < 1 or n_samples < 1:
            raise ValueError(
                f"epochs and n_samples must be >= 1; got E={epochs}, n={n_samples}"
            )
        return epochs * (self.timing.tau0 * n_samples + self.timing.tau1)

    def _jittered(self, duration: float) -> float:
        if self.timing.jitter_fraction == 0 or self._rng is None:
            return duration
        factor = 1.0 + self._rng.normal(0.0, self.timing.jitter_fraction)
        return duration * max(factor, 0.1)

    def round_timing(
        self,
        epochs: int,
        n_samples: int,
        download: ModelMessage,
        upload: ModelMessage,
    ) -> RoundTiming:
        """Durations of all four phases for one round."""
        return RoundTiming(
            waiting_s=self._jittered(self.timing.waiting_s) if self.timing.waiting_s else 0.0,
            downloading_s=self._jittered(
                self.channel.transfer_message(download).duration_s
            ),
            training_s=self._jittered(self.training_duration(epochs, n_samples)),
            uploading_s=self._jittered(
                self.channel.transfer_message(upload).duration_s
            ),
        )

    # ------------------------------------------------------------------
    # Power processes and energy.
    # ------------------------------------------------------------------
    def round_power_process(
        self, timing: RoundTiming, start_time: float = 0.0
    ) -> StepProcess:
        """The four-plateau power signal of one round (Fig. 3 shape)."""
        process = StepProcess(start_time=start_time)
        phases = (
            (RoundPhase.WAITING, timing.waiting_s),
            (RoundPhase.DOWNLOADING, timing.downloading_s),
            (RoundPhase.TRAINING, timing.training_s),
            (RoundPhase.UPLOADING, timing.uploading_s),
        )
        for phase, duration in phases:
            if duration > 0:
                process.append(duration, self.powers.power_for(phase), phase.value)
        return process

    def phase_energies(
        self, timing: RoundTiming, include_waiting: bool = False
    ) -> dict[str, float]:
        """Per-phase energy of one already-drawn round timing, in joules.

        Keyed by :class:`RoundPhase` value (``"downloading"``,
        ``"training"``, ``"uploading"``, and ``"waiting"`` when
        included).  Taking a :class:`RoundTiming` rather than drawing one
        keeps the energy attribution consistent with whatever jittered
        durations the caller already committed to — and feeds the
        ``energy.joules{phase=...}`` telemetry counters without extra rng
        draws.
        """
        energies = {
            RoundPhase.DOWNLOADING.value: (
                timing.downloading_s * self.powers.downloading_w
            ),
            RoundPhase.TRAINING.value: timing.training_s * self.powers.training_w,
            RoundPhase.UPLOADING.value: (
                timing.uploading_s * self.powers.uploading_w
            ),
        }
        if include_waiting:
            energies[RoundPhase.WAITING.value] = (
                timing.waiting_s * self.powers.waiting_w
            )
        return energies

    def round_energy(
        self,
        epochs: int,
        n_samples: int,
        download: ModelMessage,
        upload: ModelMessage,
        include_waiting: bool = False,
    ) -> float:
        """Exact energy of one round at this server, in joules.

        ``include_waiting=False`` (default) matches the paper's energy
        accounting, which attributes only the active phases (download,
        train, upload) to the training task — waiting power is the
        device's idle baseline and is excluded from ``e_k^P``/``e_k^U``.
        """
        timing = self.round_timing(epochs, n_samples, download, upload)
        return sum(self.phase_energies(timing, include_waiting).values())

    def training_energy(self, epochs: int, n_samples: int) -> float:
        """Energy of step (3) alone: duration x training power = eq. (5)."""
        return self.training_duration(epochs, n_samples) * self.powers.training_w

    def upload_energy(self, upload: ModelMessage) -> float:
        """The constant ``e_k^U``: upload duration x upload power."""
        return (
            self.channel.transfer_message(upload).duration_s
            * self.powers.uploading_w
        )

    def duration_table(
        self, epochs_values: list[int], n_values: list[int]
    ) -> dict[tuple[int, int], float]:
        """Regenerate a Table-I-style duration grid on this device."""
        return {
            (epochs, n): self.training_duration(epochs, n)
            for epochs in epochs_values
            for n in n_values
        }
