"""Trace analysis: recover round structure and parameters from raw power.

The paper reads its Fig. 3 trace by eye — "step (3) lasted 0.1471 s at
5.553 W".  This module automates that workflow: given a raw
:class:`~repro.hardware.trace.PowerTrace` of a training run and the
nominal phase powers, it

1. segments the trace into rounds (each round = one
   waiting → download → train → upload cycle),
2. extracts per-round phase durations and energies, and
3. inverts the Table-I timing law ``t_train = E (tau0 n + tau1)`` to
   estimate the local epoch count ``E`` (given ``n_k``) or the dataset
   size ``n_k`` (given ``E``) the device was actually running.

This is what you would run on captures from a *real* KM001C to calibrate
the substrate against your own hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.power_model import RoundPhase, StepPowers
from repro.hardware.raspberry_pi import PiTimingConfig
from repro.hardware.trace import PowerTrace

__all__ = ["PhaseEstimate", "RoundEstimate", "TraceAnalysis", "analyze_trace"]

_PHASE_ORDER = (
    RoundPhase.WAITING,
    RoundPhase.DOWNLOADING,
    RoundPhase.TRAINING,
    RoundPhase.UPLOADING,
)


@dataclass(frozen=True)
class PhaseEstimate:
    """One recovered phase occurrence within a round."""

    phase: RoundPhase
    start_s: float
    end_s: float
    mean_power_w: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def energy_j(self) -> float:
        return self.duration_s * self.mean_power_w


@dataclass(frozen=True)
class RoundEstimate:
    """One recovered global round (a full four-phase cycle)."""

    index: int
    phases: tuple[PhaseEstimate, ...]

    def phase(self, which: RoundPhase) -> PhaseEstimate | None:
        """The round's occurrence of ``which`` (None when merged away)."""
        for estimate in self.phases:
            if estimate.phase is which:
                return estimate
        return None

    @property
    def duration_s(self) -> float:
        return self.phases[-1].end_s - self.phases[0].start_s

    @property
    def energy_j(self) -> float:
        """Energy of the active phases (training-task accounting)."""
        return sum(
            p.energy_j for p in self.phases if p.phase is not RoundPhase.WAITING
        )


@dataclass(frozen=True)
class TraceAnalysis:
    """The recovered round structure of a trace."""

    rounds: tuple[RoundEstimate, ...]

    @property
    def n_rounds(self) -> int:
        return len(self.rounds)

    def mean_phase_duration(self, phase: RoundPhase) -> float:
        """Average duration of ``phase`` across rounds that contain it."""
        durations = [
            estimate.duration_s
            for round_ in self.rounds
            for estimate in round_.phases
            if estimate.phase is phase
        ]
        if not durations:
            raise ValueError(f"no {phase.value} phase found in the trace")
        return float(np.mean(durations))

    def mean_round_energy(self) -> float:
        """Average active energy per recovered round, joules."""
        if not self.rounds:
            raise ValueError("no rounds recovered")
        return float(np.mean([round_.energy_j for round_ in self.rounds]))

    # ------------------------------------------------------------------
    # Inverting the Table-I timing law.
    # ------------------------------------------------------------------
    def estimate_epochs(
        self, n_samples: int, timing: PiTimingConfig | None = None
    ) -> float:
        """Estimate ``E`` from the training duration, given ``n_k``."""
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1; got {n_samples}")
        timing = timing or PiTimingConfig()
        train_s = self.mean_phase_duration(RoundPhase.TRAINING)
        return train_s / (timing.tau0 * n_samples + timing.tau1)

    def estimate_samples(
        self, epochs: int, timing: PiTimingConfig | None = None
    ) -> float:
        """Estimate ``n_k`` from the training duration, given ``E``."""
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1; got {epochs}")
        timing = timing or PiTimingConfig()
        train_s = self.mean_phase_duration(RoundPhase.TRAINING)
        return (train_s / epochs - timing.tau1) / timing.tau0


def _classify(power: float, powers: StepPowers) -> RoundPhase:
    """Nearest-phase classification of one plateau power."""
    return min(_PHASE_ORDER, key=lambda p: abs(powers.power_for(p) - power))


def analyze_trace(
    trace: PowerTrace,
    powers: StepPowers | None = None,
    tolerance_w: float = 0.3,
) -> TraceAnalysis:
    """Segment ``trace`` into rounds of classified phases.

    Plateaus are detected by the trace's change-point scan, classified to
    the nearest nominal phase power, and grouped into rounds: a new round
    starts at each WAITING plateau (the idle gap between rounds), or — in
    captures that begin mid-round or whose waiting phase was trimmed — at
    a phase that does not follow its predecessor in the canonical order.
    """
    powers = powers or StepPowers()
    plateaus = trace.detect_plateaus(tolerance_w=tolerance_w)
    if not plateaus:
        raise ValueError("no plateaus detected; is the trace flat or too noisy?")
    estimates = [
        PhaseEstimate(
            phase=_classify(mean_power, powers),
            start_s=start,
            end_s=end,
            mean_power_w=mean_power,
        )
        for start, end, mean_power in plateaus
    ]

    order = {phase: i for i, phase in enumerate(_PHASE_ORDER)}
    rounds: list[RoundEstimate] = []
    current: list[PhaseEstimate] = []
    for estimate in estimates:
        starts_new_round = bool(current) and (
            estimate.phase is RoundPhase.WAITING
            or order[estimate.phase] <= order[current[-1].phase]
        )
        if starts_new_round:
            rounds.append(RoundEstimate(index=len(rounds), phases=tuple(current)))
            current = []
        current.append(estimate)
    if current:
        rounds.append(RoundEstimate(index=len(rounds), phases=tuple(current)))
    return TraceAnalysis(rounds=tuple(rounds))
