"""Persistence for power traces — the KM001C's CSV log format.

The physical POWER-Z meter logs ``time, voltage, current, power`` rows
to CSV; analysis happens offline.  This module reads and writes that
format so traces recorded by the simulated meter can round-trip through
files exactly like real captures, and real captures (if you have the
hardware) can be loaded into the same analysis pipeline.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

import numpy as np

from repro.hardware.trace import PowerTrace

__all__ = ["save_trace_csv", "load_trace_csv", "trace_to_csv", "trace_from_csv"]

_HEADER = ("time_s", "voltage_v", "current_a", "power_w")


def trace_to_csv(trace: PowerTrace) -> str:
    """Serialise a trace to CSV text (header + one row per sample)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(_HEADER)
    for t, v, i, p in zip(
        trace.times, trace.voltage_v, trace.current_a, trace.power_w
    ):
        writer.writerow([f"{t:.9g}", f"{v:.9g}", f"{i:.9g}", f"{p:.9g}"])
    return buffer.getvalue()


def trace_from_csv(text: str) -> PowerTrace:
    """Parse CSV text produced by :func:`trace_to_csv` (or a real meter).

    Raises ``ValueError`` on a missing/incorrect header or malformed
    rows.
    """
    reader = csv.reader(io.StringIO(text))
    try:
        header = tuple(next(reader))
    except StopIteration:
        raise ValueError("empty CSV: no header row") from None
    if header != _HEADER:
        raise ValueError(
            f"unexpected CSV header {header!r}; expected {_HEADER!r}"
        )
    times, volts, amps, watts = [], [], [], []
    for line_number, row in enumerate(reader, start=2):
        if not row:
            continue
        if len(row) != 4:
            raise ValueError(
                f"line {line_number}: expected 4 columns, got {len(row)}"
            )
        try:
            t, v, i, p = (float(cell) for cell in row)
        except ValueError as error:
            raise ValueError(f"line {line_number}: {error}") from None
        times.append(t)
        volts.append(v)
        amps.append(i)
        watts.append(p)
    return PowerTrace(
        times=np.array(times),
        power_w=np.array(watts),
        voltage_v=np.array(volts),
        current_a=np.array(amps),
    )


def save_trace_csv(trace: PowerTrace, path: str | Path) -> None:
    """Write a trace to a CSV file."""
    Path(path).write_text(trace_to_csv(trace))


def load_trace_csv(path: str | Path) -> PowerTrace:
    """Read a trace from a CSV file."""
    return trace_from_csv(Path(path).read_text())
