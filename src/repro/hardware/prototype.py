"""The full simulated testbed: 20 Raspberry Pis + coordinator + meters.

This is the stand-in for the paper's §VI-A hardware prototype.  It
couples three substrates:

* the **FL substrate** actually trains the shared model (so required
  round counts ``T`` come from real convergence behaviour, not from the
  bound),
* the **hardware substrate** prices every round in joules and seconds
  using the measured RPi 4B constants,
* the **discrete-event engine** advances a shared wall clock so rounds
  are synchronised the way the coordinator synchronised the physical
  testbed (a round ends when its slowest participant uploads).

The "real measurement traces" of Figs. 5-6 are produced by
:meth:`HardwarePrototype.run`: train to the target accuracy with a given
``(K, E)``, integrate the energy the participating devices consumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.energy_model import HeterogeneousEnergyParams, cloud_fan_in
from repro.data.dataset import Dataset
from repro.faults.injector import FaultInjector
from repro.faults.models import FaultPlan
from repro.faults.policies import ResilienceConfig
from repro.fl.model import LogisticRegressionConfig
from repro.fl.partition import partition_iid
from repro.fl.population import AggregationTree
from repro.fl.server import Coordinator
from repro.fl.sgd import SGDConfig
from repro.fl.training import FederatedConfig, FederatedTrainer, build_clients
from repro.fl.metrics import TrainingHistory
from repro.hardware.power_meter import MeterConfig, PowerMeter
from repro.hardware.power_model import StepPowers
from repro.hardware.raspberry_pi import PiTimingConfig, RaspberryPiEdgeServer
from repro.hardware.trace import PowerTrace
from repro.iot.network import IoTNetwork
from repro.net.channel import ChannelConfig, WirelessChannel
from repro.net.messages import (
    ModelMessage,
    model_download_message,
    model_upload_message,
)
from repro.obs.observer import active_or_none
from repro.sim.engine import Simulator
from repro.sim.processes import StepProcess

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.obs.observer import Observer

__all__ = ["PrototypeConfig", "PrototypeResult", "HardwarePrototype"]


@dataclass(frozen=True)
class PrototypeConfig:
    """Configuration of the simulated testbed.

    Defaults mirror the paper: 20 edge servers, 3 000 samples each,
    multinomial logistic regression, full-batch SGD at lr 0.01 with
    decay 0.99, measured RPi 4B power/timing constants.
    """

    n_servers: int = 20
    model: LogisticRegressionConfig = field(default_factory=LogisticRegressionConfig)
    sgd: SGDConfig = field(default_factory=SGDConfig)
    timing: PiTimingConfig = field(default_factory=PiTimingConfig)
    powers: StepPowers = field(default_factory=StepPowers)
    channel: ChannelConfig = field(default_factory=ChannelConfig)
    include_waiting: bool = False
    include_iot: bool = False
    heterogeneity: float = 0.0
    seed: int = 0
    backend: str = "sequential"
    # Fog aggregation tiers between the edge servers and the cloud.
    # 0 keeps the paper's flat single-hop aggregation; a positive value
    # folds each round's updates through that many fog nodes before the
    # cloud combines the tier partials (matches the flat mean to
    # ~1e-12, not bit-for-bit).
    aggregation_tiers: int = 0

    def __post_init__(self) -> None:
        if self.n_servers < 1:
            raise ValueError(f"n_servers must be >= 1; got {self.n_servers}")
        if not 0.0 <= self.heterogeneity < 0.9:
            raise ValueError(
                "heterogeneity must be in [0, 0.9) — it is the relative "
                f"spread of per-device power/speed factors; got {self.heterogeneity}"
            )
        if self.aggregation_tiers < 0:
            raise ValueError(
                f"aggregation_tiers must be >= 0; got {self.aggregation_tiers}"
            )


@dataclass(frozen=True)
class PrototypeResult:
    """Everything one testbed run measured.

    Attributes:
        history: per-round loss/accuracy records from the FL substrate.
        rounds: number of global rounds executed.
        total_energy_j: summed energy of all participants over all rounds
            (the paper's headline metric for Figs. 5-6).
        energy_per_round_j: round-by-round energy.
        iot_energy_j: data-collection energy (0 unless ``include_iot``).
        wall_clock_s: simulated testbed time from start to last upload.
        reached_target: whether the accuracy target was met within the
            round budget.
        participants: the ``K`` used.
        epochs: the ``E`` used.
        wasted_energy_j: joules burned on failures — retry
            transmissions, backoff waits, and the full active energy of
            clients whose round was futile (0 in a failure-free run).
        degraded_rounds: rounds where the quorum was missed and the
            previous global model was carried forward.
        aggregation_energy_j: cloud-side reception energy of the
            aggregation step, priced per combined message at the mean
            upload energy (symmetric link).  With fog tiers the cloud
            combines ``min(tiers, K)`` tier partials instead of ``K``
            uploads, so this is where the hierarchical topology's
            saving shows up.  Reported separately from
            ``total_energy_j`` (which remains the paper's
            participant-side eq. (3)/(6) metric).
    """

    history: TrainingHistory
    rounds: int
    total_energy_j: float
    energy_per_round_j: np.ndarray
    iot_energy_j: float
    wall_clock_s: float
    reached_target: bool
    participants: int
    epochs: int
    wasted_energy_j: float = 0.0
    degraded_rounds: int = 0
    aggregation_energy_j: float = 0.0

    @property
    def mean_round_energy_j(self) -> float:
        return float(self.energy_per_round_j.mean())

    @property
    def wasted_fraction(self) -> float:
        """Share of the total energy burned on failures."""
        if self.total_energy_j <= 0:
            return 0.0
        return self.wasted_energy_j / self.total_energy_j


class HardwarePrototype:
    """The simulated 20-Pi testbed.

    Args:
        train: pooled training dataset (uniformly partitioned over the
            servers, as in the paper).
        test: held-out evaluation set.
        config: testbed configuration.
        iot_network: optional IoT substrate; required when
            ``config.include_iot`` is set, providing the per-server
            ``rho_k`` constants for the data-collection energy.
        observer: optional telemetry sink, threaded through every layer
            the testbed drives: the FL trainer (round/client events), the
            DES engine (``sim.event`` records on the simulated clock),
            and the energy accounting (``energy.joules{phase=...}``
            counters split download/train/upload/wait/collect).
    """

    def __init__(
        self,
        train: Dataset,
        test: Dataset,
        config: PrototypeConfig | None = None,
        iot_network: IoTNetwork | None = None,
        partitions: list[Dataset] | None = None,
        observer: "Observer | None" = None,
    ) -> None:
        self.config = config or PrototypeConfig()
        self._observer = active_or_none(observer)
        if self.config.include_iot and iot_network is None:
            raise ValueError("include_iot=True requires an iot_network")
        self.train = train
        self.test = test
        self.iot_network = iot_network
        rng = np.random.default_rng(self.config.seed)
        if partitions is None:
            # The paper's allocation: uniform iid split over the servers.
            partitions = partition_iid(train, self.config.n_servers, rng)
        elif len(partitions) != self.config.n_servers:
            raise ValueError(
                f"got {len(partitions)} partitions for "
                f"{self.config.n_servers} servers"
            )
        self._partitions = partitions
        # Heterogeneous testbeds (config.heterogeneity > 0) draw a
        # per-device hardware factor: a faster, hungrier box has both
        # shorter epochs (timing / factor would be *speed*; here the
        # factor scales power and training time together as different
        # SoC bins do) — we scale powers up and timing independently so
        # per-round energies genuinely differ across devices.
        factor_rng = np.random.default_rng([self.config.seed, 0x4A4D])
        self.devices = []
        for i in range(self.config.n_servers):
            timing = self.config.timing
            powers = self.config.powers
            if self.config.heterogeneity > 0:
                power_factor = float(
                    np.clip(
                        factor_rng.normal(1.0, self.config.heterogeneity), 0.2, 3.0
                    )
                )
                speed_factor = float(
                    np.clip(
                        factor_rng.normal(1.0, self.config.heterogeneity), 0.2, 3.0
                    )
                )
                powers = powers.scaled(power_factor)
                timing = PiTimingConfig(
                    tau0=timing.tau0 * speed_factor,
                    tau1=timing.tau1 * speed_factor,
                    waiting_s=timing.waiting_s,
                    jitter_fraction=timing.jitter_fraction,
                )
            self.devices.append(
                RaspberryPiEdgeServer(
                    server_id=i,
                    timing=timing,
                    powers=powers,
                    channel=WirelessChannel(self.config.channel),
                    rng=np.random.default_rng((self.config.seed, i)),
                )
            )
        self._download = model_download_message(self.config.model)
        self._upload = model_upload_message(self.config.model)

    @property
    def samples_per_server(self) -> int:
        """``n_k`` of the first server (uniform partition sizes +-1)."""
        return len(self._partitions[0])

    def heterogeneous_energy_params(
        self, rho_values: dict[int, float] | None = None
    ) -> HeterogeneousEnergyParams:
        """Per-device energy constants of this testbed.

        Derives each device's ``(c0, c1)`` from its timing law and
        training power (``c = tau * P_train``) and its ``e^U`` from the
        upload transfer; the result feeds eq. (12)'s expectation
        operators via :meth:`HeterogeneousEnergyParams.mean`.
        """
        n = self.config.n_servers
        rho = np.zeros(n)
        if rho_values is not None:
            for server_id, value in rho_values.items():
                rho[server_id] = value
        elif self.iot_network is not None:
            for server_id, value in self.iot_network.rho_values().items():
                rho[server_id] = value
        c0 = np.array(
            [d.timing.tau0 * d.powers.training_w for d in self.devices]
        )
        c1 = np.array(
            [d.timing.tau1 * d.powers.training_w for d in self.devices]
        )
        e_upload = np.array(
            [d.upload_energy(self._upload) for d in self.devices]
        )
        return HeterogeneousEnergyParams(
            rho=rho,
            c0=c0,
            c1=c1,
            e_upload=e_upload,
            n_samples=self.samples_per_server,
        )

    def _make_trainer(
        self,
        participants: int,
        epochs: int,
        n_rounds: int,
        target_accuracy: float | None,
        overselection: int = 0,
        completion_ranker=None,
        update_compressor=None,
        fault_injector: FaultInjector | None = None,
        resilience: ResilienceConfig | None = None,
        federated_config: FederatedConfig | None = None,
    ) -> FederatedTrainer:
        clients = build_clients(
            self._partitions, self.config.model, seed=self.config.seed
        )
        # A caller-supplied config (e.g. a RunSpec projection) is used
        # verbatim so every training knob it declares — dropout,
        # proximal mu, pool workers — is honored; otherwise one is
        # assembled from the loop arguments and the testbed defaults.
        fed_config = federated_config or FederatedConfig(
            n_rounds=n_rounds,
            participants_per_round=participants,
            local_epochs=epochs,
            sgd=self.config.sgd,
            target_accuracy=target_accuracy,
            overselection=overselection,
            seed=self.config.seed,
            backend=self.config.backend,
        )
        coordinator = None
        if self.config.aggregation_tiers > 0:
            coordinator = Coordinator(
                self.config.model,
                observer=self._observer,
                aggregation_tree=AggregationTree(self.config.aggregation_tiers),
            )
        client_time_fn = None
        if resilience is not None:
            # Deadline checks use the measured timing law (jitter-free,
            # so the check itself consumes no device randomness).
            def client_time_fn(client_id: int, round_index: int) -> float:
                return self.devices[client_id].training_duration(
                    epochs, len(self._partitions[client_id])
                )

        return FederatedTrainer(
            clients=clients,
            config=fed_config,
            train_eval=self.train,
            test_eval=self.test,
            coordinator=coordinator,
            completion_ranker=completion_ranker,
            update_compressor=update_compressor,
            observer=self._observer,
            fault_injector=fault_injector,
            resilience=resilience,
            upload_channel=WirelessChannel(self.config.channel),
            client_time_fn=client_time_fn,
        )

    def _round_energy(
        self,
        server_id: int,
        epochs: int,
        n_samples: int,
        upload: ModelMessage | None = None,
    ) -> float:
        device = self.devices[server_id]
        timing = device.round_timing(
            epochs, n_samples, self._download, upload or self._upload
        )
        phases = device.phase_energies(
            timing, include_waiting=self.config.include_waiting
        )
        energy = sum(phases.values())
        if self._observer is not None:
            for phase, joules in phases.items():
                self._observer.counter("energy.joules", phase=phase).inc(joules)
        if self.config.include_iot:
            assert self.iot_network is not None
            collected = self.iot_network.cluster(server_id).collection_energy(
                n_samples
            )
            energy += collected
            if self._observer is not None:
                self._observer.counter("energy.joules", phase="collect").inc(
                    collected
                )
        return energy

    def _nominal_round_energy(
        self, server_id: int, epochs: int, upload: ModelMessage
    ) -> float:
        """Jitter-free active energy of one round at one device.

        Used to price the *futile* work of clients whose round failed
        (upload lost, deadline missed, payload rejected) into the
        ``energy.wasted_j`` counter without consuming any device
        randomness or double-counting telemetry.
        """
        device = self.devices[server_id]
        n_k = len(self._partitions[server_id])
        return (
            device.training_duration(epochs, n_k) * device.powers.training_w
            + device.channel.attempt_duration(self._download.total_bytes)
            * device.powers.downloading_w
            + device.channel.attempt_duration(upload.total_bytes)
            * device.powers.uploading_w
        )

    def run(
        self,
        participants: int | None = None,
        epochs: int | None = None,
        n_rounds: int = 1000,
        target_accuracy: float | None = None,
        overselection: int = 0,
        update_compressor=None,
        fault_plan: FaultPlan | None = None,
        resilience: ResilienceConfig | None = None,
        federated_config: FederatedConfig | None = None,
    ) -> PrototypeResult:
        """Train with ``(K, E)`` and measure the energy spent.

        ``federated_config``, when given, is the single source of truth
        for the training loop: ``(K, E)``, round budget, accuracy
        target, overselection, and every knob the loop arguments cannot
        express (dropout probability, FedProx mu, pool workers) are all
        taken from it and the corresponding arguments are ignored.
        Without it, ``participants`` and ``epochs`` are required and a
        config is assembled from the loop arguments.

        Stops at ``target_accuracy`` if given, else after ``n_rounds``.
        The simulated wall clock advances round by round: a round lasts
        as long as its slowest *awaited* participant — all selected with
        plain FedAvg; only the K fastest with ``overselection > 0``
        (stragglers still train and burn energy, but the coordinator
        moves on without them).

        ``update_compressor`` (a :class:`~repro.fl.compression.Compressor`
        or :class:`~repro.fl.compression.ErrorFeedback`) compresses each
        uploaded update; the upload message — and hence the upload time
        and energy ``e_k^U`` — shrinks to the compressed size.

        ``fault_plan`` attaches a deterministic
        :class:`~repro.faults.FaultInjector` (crashes, stragglers,
        burst loss, battery depletion, corrupted uploads) and
        ``resilience`` the recovery policies the trainer applies.  The
        energy accounting then prices failure cost at the measured step
        powers: every retry transmission burns upload power, every
        backoff waits at waiting power, and the full active energy of a
        client whose round was futile (upload failed, deadline missed,
        update rejected) is charged to the ``energy.wasted_j`` counter
        on top of appearing in the round totals.
        """
        if federated_config is not None:
            participants = federated_config.participants_per_round
            epochs = federated_config.local_epochs
            n_rounds = federated_config.n_rounds
            target_accuracy = federated_config.target_accuracy
            overselection = federated_config.overselection
        elif participants is None or epochs is None:
            raise ValueError(
                "run() requires either federated_config or both "
                "participants and epochs"
            )
        upload_message = self._upload
        if update_compressor is not None:
            compressor = getattr(update_compressor, "compressor", update_compressor)
            upload_message = ModelMessage(
                "upload",
                compressor.compressed_bytes(self.config.model.n_parameters),
            )
        round_timings: dict[int, dict[int, float]] = {}

        def ranker(round_index: int, selected: list[int]) -> list[int]:
            timings = {
                cid: self.devices[cid]
                .round_timing(
                    epochs,
                    len(self._partitions[cid]),
                    self._download,
                    upload_message,
                )
                .total_s
                for cid in selected
            }
            round_timings[round_index] = timings
            return sorted(selected, key=lambda cid: timings[cid])

        injector = (
            FaultInjector(
                fault_plan, self.config.n_servers, observer=self._observer
            )
            if fault_plan is not None
            else None
        )
        trainer = self._make_trainer(
            participants,
            epochs,
            n_rounds,
            target_accuracy,
            overselection=overselection,
            completion_ranker=ranker if overselection > 0 else None,
            update_compressor=update_compressor,
            fault_injector=injector,
            resilience=resilience,
            federated_config=federated_config,
        )
        simulator = Simulator(observer=self._observer)
        energy_per_round: list[float] = []
        wasted_energy = {"total": 0.0}
        # One combined message at the cloud is priced at the mean upload
        # energy (symmetric link: receiving a model costs what sending
        # it does).  Fog tiers shrink the per-round message count from K
        # to min(tiers, K); fog-side reception is the fog nodes' budget,
        # not the cloud's, so it is deliberately not charged here.
        e_receive = float(
            np.mean([d.upload_energy(upload_message) for d in self.devices])
        )
        aggregation_messages = {"total": 0}
        iot_energy = 0.0
        state = {"stop": False}

        def run_round(sim: Simulator) -> None:
            record = trainer.run_round()
            round_energy = 0.0
            round_duration = 0.0
            timings = round_timings.get(record.round_index)
            per_client_energy: dict[int, float] = {}
            for server_id in record.participants:
                n_k = len(self._partitions[server_id])
                client_energy = self._round_energy(
                    server_id, epochs, n_k, upload=upload_message
                )
                per_client_energy[server_id] = client_energy
                round_energy += client_energy
            report = trainer.last_resilience_report
            if report is not None and report.round_index != record.round_index:
                report = None
            retry_overhead: dict[int, float] = {}
            round_wasted = 0.0
            if report is not None:
                # Price the failure cost at the measured step powers:
                # retry transmissions at 5.015 W upload power, backoff
                # waits at 3.600 W waiting power, futile rounds in full.
                for server_id, attempts in report.upload_attempts.items():
                    device = self.devices[server_id]
                    attempt_s = device.channel.attempt_duration(
                        upload_message.total_bytes
                    )
                    backoff_s = report.backoff_s.get(server_id, 0.0)
                    retry_j = (
                        max(0, attempts - 1)
                        * attempt_s
                        * device.powers.uploading_w
                    )
                    wait_j = backoff_s * device.powers.waiting_w
                    if retry_j or wait_j:
                        round_energy += retry_j + wait_j
                        round_wasted += retry_j + wait_j
                        per_client_energy[server_id] = (
                            per_client_energy.get(server_id, 0.0)
                            + retry_j
                            + wait_j
                        )
                        retry_overhead[server_id] = (
                            max(0, attempts - 1) * attempt_s + backoff_s
                        )
                futile = set(report.failed_uploads) | set(report.late)
                futile |= set(report.corrupted)
                for server_id in futile:
                    round_wasted += self._nominal_round_energy(
                        server_id, epochs, upload_message
                    )
                wasted_energy["total"] += round_wasted
                if self._observer is not None and round_wasted > 0:
                    self._observer.counter("energy.wasted_j").inc(round_wasted)
            if injector is not None:
                # Drain the declared batteries by the energy actually
                # measured this round (depleted devices crash from the
                # next round onward).
                for server_id, client_energy in per_client_energy.items():
                    injector.note_participation(
                        server_id, record.round_index, energy_j=client_energy
                    )
            if record.aggregated:
                aggregation_messages["total"] += cloud_fan_in(
                    len(record.aggregated), self.config.aggregation_tiers
                )
            awaited = record.aggregated or record.participants
            for server_id in awaited:
                if timings is not None:
                    duration = timings[server_id]
                else:
                    duration = self.devices[server_id].round_timing(
                        epochs,
                        len(self._partitions[server_id]),
                        self._download,
                        upload_message,
                    ).total_s
                duration += retry_overhead.get(server_id, 0.0)
                round_duration = max(round_duration, duration)
            if (
                resilience is not None
                and resilience.round_deadline_s is not None
            ):
                # The coordinator moves on at the deadline.
                round_duration = min(
                    round_duration, resilience.round_deadline_s
                )
            if round_duration <= 0.0:
                # A fully-crashed (empty) round still takes the
                # coordinator's waiting period of wall-clock time.
                round_duration = self.config.timing.waiting_s or 1.0
            energy_per_round.append(round_energy)
            if self._observer is not None:
                self._observer.histogram("sim.round_duration_s").observe(
                    round_duration
                )
                self._observer.emit(
                    "prototype.round",
                    sim_time=sim.now,
                    round=record.round_index,
                    energy_j=round_energy,
                    duration_s=round_duration,
                    participants=len(record.participants),
                    wasted_j=round_wasted,
                    degraded=record.degraded,
                )
            done = len(energy_per_round) >= n_rounds or (
                target_accuracy is not None
                and record.test_accuracy >= target_accuracy
            )
            if done:
                state["stop"] = True
                # Advance the clock over the final round without
                # scheduling another one.
                sim.schedule(round_duration, lambda s: None, label="final-upload")
            else:
                sim.schedule(round_duration, run_round, label="round-start")

        simulator.schedule(0.0, run_round, label="round-start")
        try:
            simulator.run()
        finally:
            trainer.close()

        if self.config.include_iot:
            assert self.iot_network is not None
            for record in trainer.history.records:
                for server_id in record.participants:
                    n_k = len(self._partitions[server_id])
                    iot_energy += self.iot_network.cluster(
                        server_id
                    ).collection_energy(n_k)

        history = trainer.history
        reached = (
            target_accuracy is not None
            and history.final_accuracy() >= target_accuracy
        )
        return PrototypeResult(
            history=history,
            rounds=len(history),
            total_energy_j=float(np.sum(energy_per_round)),
            energy_per_round_j=np.array(energy_per_round),
            iot_energy_j=iot_energy,
            wall_clock_s=simulator.now,
            reached_target=reached,
            participants=participants,
            epochs=epochs,
            wasted_energy_j=wasted_energy["total"],
            degraded_rounds=history.degraded_round_count(),
            aggregation_energy_j=aggregation_messages["total"] * e_receive,
        )

    def run_async(
        self,
        max_updates: int,
        epochs: int,
        mixing_alpha: float = 0.6,
        staleness_beta: float = 0.5,
        target_accuracy: float | None = None,
        eval_every: int = 1,
    ):
        """Asynchronous (FedAsync-style) training on this testbed.

        Every device trains continuously at its own measured pace (the
        round-timing model minus the waiting phase — async has no round
        barrier to wait at); the coordinator merges each arriving update
        with a staleness-discounted weight.  Returns
        ``(AsyncResult, total_energy_j)``: energy is the active energy of
        every completed local job, merged or not.
        """
        from repro.fl.async_training import AsyncConfig, AsyncFederatedTrainer

        energy_counter = {"total": 0.0}

        def duration(client_id: int) -> float:
            n_k = len(self._partitions[client_id])
            timing = self.devices[client_id].round_timing(
                epochs, n_k, self._download, self._upload
            )
            energy_counter["total"] += self._round_energy(client_id, epochs, n_k)
            return timing.total_s - timing.waiting_s

        clients = build_clients(
            self._partitions, self.config.model, seed=self.config.seed
        )
        trainer = AsyncFederatedTrainer(
            clients=clients,
            config=AsyncConfig(
                max_updates=max_updates,
                local_epochs=epochs,
                mixing_alpha=mixing_alpha,
                staleness_beta=staleness_beta,
                sgd=self.config.sgd,
                eval_every=eval_every,
                target_accuracy=target_accuracy,
                seed=self.config.seed,
            ),
            train_eval=self.train,
            test_eval=self.test,
            duration_fn=duration,
        )
        result = trainer.run()
        return result, energy_counter["total"]

    # ------------------------------------------------------------------
    # Fig. 3: a metered trace of consecutive rounds at one device.
    # ------------------------------------------------------------------
    def record_power_trace(
        self,
        server_id: int,
        epochs: int,
        n_rounds: int = 2,
        meter: PowerMeter | None = None,
    ) -> PowerTrace:
        """Meter one device across ``n_rounds`` consecutive rounds.

        Reproduces Fig. 3: the four-plateau pattern repeating each round.
        """
        if n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1; got {n_rounds}")
        device = self.devices[server_id]
        n_k = len(self._partitions[server_id])
        process = StepProcess()
        for _ in range(n_rounds):
            timing = device.round_timing(epochs, n_k, self._download, self._upload)
            process.extend(device.round_power_process(timing))
        meter = meter or PowerMeter(
            MeterConfig(),
            rng=np.random.default_rng(self.config.seed),
            observer=self._observer,
        )
        return meter.record(process)
