"""Discrete-event simulation engine used by the hardware substrate."""

from repro.sim.engine import Event, Simulator
from repro.sim.processes import Segment, StepProcess

__all__ = ["Event", "Simulator", "Segment", "StepProcess"]
