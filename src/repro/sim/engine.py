"""A small discrete-event simulation engine.

The hardware-prototype substrate replays the FEI round structure
(waiting → download → train → upload) as timed events on a shared clock
so that per-device power traces line up the way they did on the paper's
physical testbed (20 Raspberry Pis synchronised by the coordinator).

The engine is deliberately generic: events are ``(time, priority, seq,
action)`` tuples on a heap; actions are callables receiving the
simulator, may schedule further events, and run in deterministic order
(time, then priority, then insertion order).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.obs.observer import active_or_none

if TYPE_CHECKING:
    from repro.obs.observer import Observer

__all__ = ["Event", "Simulator"]


@dataclass(order=True)
class Event:
    """A scheduled action, ordered by (time, priority, sequence number)."""

    time: float
    priority: int
    sequence: int
    action: Callable[["Simulator"], None] = field(compare=False)
    label: str = field(default="", compare=False)


class Simulator:
    """Deterministic event-driven simulator with a floating-point clock.

    Args:
        observer: optional telemetry sink.  When attached, every executed
            event increments the ``sim.events_processed`` counter and
            every *labelled* event is bridged into the structured event
            log as a ``sim.event`` record carrying the simulation time —
            the same information as :attr:`trace`, in the shared format.
    """

    def __init__(self, observer: "Observer | None" = None) -> None:
        self._queue: list[Event] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._trace: list[tuple[float, str]] = []
        self._observer = active_or_none(observer)

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    @property
    def trace(self) -> list[tuple[float, str]]:
        """Chronological ``(time, label)`` log of executed labelled events."""
        return list(self._trace)

    def schedule(
        self,
        delay: float,
        action: Callable[["Simulator"], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which can be cancelled with
        :meth:`cancel`.
        """
        if delay < 0:
            raise ValueError(f"delay must be non-negative; got {delay}")
        event = Event(
            time=self._now + delay,
            priority=priority,
            sequence=next(self._sequence),
            action=action,
            label=label,
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self,
        time: float,
        action: Callable[["Simulator"], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at an absolute simulation time."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        return self.schedule(time - self._now, action, priority, label)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if it already ran)."""
        event.action = _cancelled

    def _drain_cancelled_head(self) -> None:
        """Discard cancelled events sitting at the front of the queue.

        Keeps head peeks (``run``'s ``until`` check) accurate: a cancelled
        event's stale timestamp must not decide whether the next *real*
        event is within the time bound.
        """
        while self._queue and self._queue[0].action is _cancelled:
            heapq.heappop(self._queue)

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty.

        Cancelled events are silently discarded and never count as
        executed work (``events_processed`` only counts real actions).
        """
        self._drain_cancelled_head()
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self._now = event.time
        if event.label:
            self._trace.append((event.time, event.label))
        event.action(self)
        self._processed += 1
        if self._observer is not None:
            self._observer.counter("sim.events_processed").inc()
            if event.label:
                self._observer.emit(
                    "sim.event",
                    sim_time=event.time,
                    label=event.label,
                    priority=event.priority,
                )
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events in order, optionally bounded by time or event count.

        With ``until`` set, the clock is advanced to exactly ``until`` even
        when the queue empties earlier, and events after ``until`` remain
        queued.  ``max_events`` bounds *executed* events: the accounting is
        unified on :attr:`events_processed`, so cancelled events drained
        along the way never consume budget (and instrumentation wrapping
        :meth:`step` cannot drift from the budget check).
        """
        if max_events is not None and max_events < 0:
            raise ValueError(f"max_events must be non-negative; got {max_events}")
        started_at = self._processed
        while self._queue:
            if (
                max_events is not None
                and self._processed - started_at >= max_events
            ):
                return
            self._drain_cancelled_head()
            if not self._queue:
                break
            if until is not None and self._queue[0].time > until:
                break
            if not self.step():
                break
        if until is not None and until > self._now:
            self._now = until


def _cancelled(sim: Simulator) -> None:
    """Sentinel action for cancelled events (never executed)."""
    raise AssertionError("cancelled event executed")
