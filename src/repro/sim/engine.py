"""A small discrete-event simulation engine.

The hardware-prototype substrate replays the FEI round structure
(waiting → download → train → upload) as timed events on a shared clock
so that per-device power traces line up the way they did on the paper's
physical testbed (20 Raspberry Pis synchronised by the coordinator).

The engine is deliberately generic: events are ``(time, priority, seq,
action)`` tuples on a heap; actions are callables receiving the
simulator, may schedule further events, and run in deterministic order
(time, then priority, then insertion order).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["Event", "Simulator"]


@dataclass(order=True)
class Event:
    """A scheduled action, ordered by (time, priority, sequence number)."""

    time: float
    priority: int
    sequence: int
    action: Callable[["Simulator"], None] = field(compare=False)
    label: str = field(default="", compare=False)


class Simulator:
    """Deterministic event-driven simulator with a floating-point clock."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._processed = 0
        self._trace: list[tuple[float, str]] = []

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    @property
    def pending(self) -> int:
        """Number of events still queued."""
        return len(self._queue)

    @property
    def trace(self) -> list[tuple[float, str]]:
        """Chronological ``(time, label)`` log of executed labelled events."""
        return list(self._trace)

    def schedule(
        self,
        delay: float,
        action: Callable[["Simulator"], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` to run ``delay`` seconds from now.

        Returns the :class:`Event`, which can be cancelled with
        :meth:`cancel`.
        """
        if delay < 0:
            raise ValueError(f"delay must be non-negative; got {delay}")
        event = Event(
            time=self._now + delay,
            priority=priority,
            sequence=next(self._sequence),
            action=action,
            label=label,
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self,
        time: float,
        action: Callable[["Simulator"], None],
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at an absolute simulation time."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        return self.schedule(time - self._now, action, priority, label)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if it already ran)."""
        event.action = _cancelled

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.action is _cancelled:
                continue
            self._now = event.time
            if event.label:
                self._trace.append((event.time, event.label))
            event.action(self)
            self._processed += 1
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run events in order, optionally bounded by time or event count.

        With ``until`` set, the clock is advanced to exactly ``until`` even
        when the queue empties earlier, and events after ``until`` remain
        queued.
        """
        executed = 0
        while self._queue:
            if max_events is not None and executed >= max_events:
                return
            if until is not None and self._queue[0].time > until:
                break
            if not self.step():
                break
            executed += 1
        if until is not None and until > self._now:
            self._now = until


def _cancelled(sim: Simulator) -> None:
    """Sentinel action for cancelled events (never executed)."""
    raise AssertionError("cancelled event executed")
