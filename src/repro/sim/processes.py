"""Piecewise-constant processes over simulation time.

The power draw of an edge server during a training round is a step
function of time: 3.6 W while waiting, 4.286 W while downloading, and so
on (Fig. 3 of the paper).  :class:`StepProcess` models such signals and
supports the two operations the prototype needs: point evaluation (what
the power meter samples) and exact integration (ground-truth energy).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

__all__ = ["Segment", "StepProcess"]


@dataclass(frozen=True)
class Segment:
    """One constant-valued interval ``[start, end)`` of a step process."""

    start: float
    end: float
    value: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(
                f"segment must have positive duration; got [{self.start}, {self.end})"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start


class StepProcess:
    """A right-open piecewise-constant function of time.

    Segments must be appended in chronological order and be contiguous
    (each starts where the previous ended); gaps are not allowed because
    a physical device always draws *some* power.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._segments: list[Segment] = []
        self._starts: list[float] = []
        self._start_time = start_time

    @property
    def segments(self) -> tuple[Segment, ...]:
        return tuple(self._segments)

    @property
    def start_time(self) -> float:
        return self._start_time

    @property
    def end_time(self) -> float:
        """End of the last segment (== start time when empty)."""
        return self._segments[-1].end if self._segments else self._start_time

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    def append(self, duration: float, value: float, label: str = "") -> Segment:
        """Append a constant segment of ``duration`` seconds at the end."""
        if duration <= 0:
            raise ValueError(f"duration must be positive; got {duration}")
        start = self.end_time
        segment = Segment(start, start + duration, value, label)
        self._segments.append(segment)
        self._starts.append(start)
        return segment

    def extend(self, other: "StepProcess") -> None:
        """Append all of ``other``'s segments after this process."""
        for segment in other.segments:
            self.append(segment.duration, segment.value, segment.label)

    def value_at(self, time: float) -> float:
        """Evaluate the process at ``time`` (right-open segments).

        Querying at exactly ``end_time`` returns the final segment's value
        so meters sampling the closing instant see a defined signal.
        """
        if not self._segments:
            raise ValueError("process has no segments")
        if time < self._start_time or time > self.end_time:
            raise ValueError(
                f"time {time} outside process span "
                f"[{self._start_time}, {self.end_time}]"
            )
        index = bisect.bisect_right(self._starts, time) - 1
        index = max(index, 0)
        return self._segments[index].value

    def values_at(self, times: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`value_at` for sorted or unsorted sample times."""
        times = np.asarray(times, dtype=float)
        if times.size and (times.min() < self._start_time or times.max() > self.end_time):
            raise ValueError("sample times outside the process span")
        starts = np.array(self._starts)
        values = np.array([s.value for s in self._segments])
        indices = np.clip(np.searchsorted(starts, times, side="right") - 1, 0, None)
        return values[indices]

    def integral(self, start: float | None = None, end: float | None = None) -> float:
        """Exact integral of the process over ``[start, end]``.

        For a power process this is the energy in joules.  Defaults to the
        full span.
        """
        if not self._segments:
            return 0.0
        lo = self._start_time if start is None else start
        hi = self.end_time if end is None else end
        if lo > hi:
            raise ValueError(f"empty integration range [{lo}, {hi}]")
        total = 0.0
        for segment in self._segments:
            overlap = min(segment.end, hi) - max(segment.start, lo)
            if overlap > 0:
                total += overlap * segment.value
        return total

    def labelled_spans(self) -> dict[str, float]:
        """Total duration per segment label (e.g. seconds spent training)."""
        spans: dict[str, float] = {}
        for segment in self._segments:
            spans[segment.label] = spans.get(segment.label, 0.0) + segment.duration
        return spans
