"""EE-FEI: energy-efficient federated edge intelligence for IoT networks.

Reproduction of Wang et al., "Towards Energy-efficient Federated Edge
Intelligence for IoT Networks", ICDCS 2021.

Public API highlights:

* :class:`RunSpec` — the unified run configuration: dataset/testbed
  sizes, ``(K, E)``, budgets, execution backend, fault plan and
  resilience policy in one validated, JSON-round-trippable object.
* :class:`CampaignSpec` / :class:`CampaignRunner` /
  :class:`ArtifactStore` / :class:`CampaignReport` — declare a sweep
  over K/E/seed/backend/fault axes, execute it with checkpoint/resume,
  and regenerate the Fig. 5/6 grids from stored artifacts
  (:mod:`repro.campaign`).
* :class:`CampaignRepository` / :func:`open_store` — the campaign
  storage API: JSON-manifest and SQLite-indexed backends behind one
  interface, with typed :class:`StoreHealthReport` integrity results
  and backend migration (:mod:`repro.campaign.repository`).
* :class:`repro.core.EnergyPlanner` — calibrated constants in, optimal
  integer ``(K, E, T)`` schedule out (the paper's contribution).
* :mod:`repro.fl` — FedAvg substrate (model, clients, coordinator, loop).
* :mod:`repro.data` — synthetic-MNIST dataset substrate.
* :mod:`repro.hardware` — simulated Raspberry-Pi prototype + power meter.
* :mod:`repro.iot` / :mod:`repro.net` — uplink and coordination channels.
* :mod:`repro.experiments` — regenerates every table/figure of §VI.
* :mod:`repro.obs` — structured events, metrics, tracing, profiling;
  attach an :class:`~repro.obs.Observer` to any execution layer.

Deprecated (still importable from here, with a ``DeprecationWarning``):
``ExperimentScale``, ``FederatedConfig``, and ``ResilienceConfig`` are
now projections of :class:`RunSpec` — new code should declare a
:class:`RunSpec` and derive them via :meth:`RunSpec.scale` /
:meth:`RunSpec.federated_config` / the ``resilience`` field.  These
top-level aliases will be removed in repro 2.0; the classes themselves
keep working indefinitely at their original homes
(:mod:`repro.experiments.config`, :mod:`repro.fl.training`,
:mod:`repro.faults`).
"""

import warnings

from repro.campaign import (
    ArtifactStore,
    CampaignReport,
    CampaignRepository,
    CampaignRunner,
    CampaignSpec,
    CampaignStatus,
    RunSpec,
    StoreHealthReport,
    campaign_telemetry,
    open_store,
)
from repro.core import (
    ACSSolver,
    ConvergenceBound,
    EnergyObjective,
    EnergyParams,
    EnergyPlan,
    EnergyPlanner,
)
from repro.obs import NullObserver, Observer

__version__ = "1.0.0"

__all__ = [
    "ACSSolver",
    "ArtifactStore",
    "CampaignReport",
    "CampaignRepository",
    "CampaignRunner",
    "CampaignSpec",
    "CampaignStatus",
    "ConvergenceBound",
    "EnergyObjective",
    "EnergyParams",
    "EnergyPlan",
    "EnergyPlanner",
    "NullObserver",
    "Observer",
    "RunSpec",
    "StoreHealthReport",
    "__version__",
    "campaign_telemetry",
    "open_store",
]

# Thin deprecation shims: the pre-RunSpec configuration trio stays
# importable from the top level, but warns and points at the unified
# surface.  The canonical homes (repro.experiments.config,
# repro.fl.training, repro.faults) do not warn.
_DEPRECATED_SHIMS = {
    "ExperimentScale": (
        "repro.experiments.config",
        "declare a repro.RunSpec and use RunSpec.scale()",
    ),
    "FederatedConfig": (
        "repro.fl.training",
        "declare a repro.RunSpec and use RunSpec.federated_config()",
    ),
    "ResilienceConfig": (
        "repro.faults.policies",
        "declare a repro.RunSpec and set its 'resilience' field",
    ),
}


def __getattr__(name: str):
    """Serve deprecated top-level aliases of the legacy config trio."""
    shim = _DEPRECATED_SHIMS.get(name)
    if shim is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module_name, advice = shim
    warnings.warn(
        f"repro.{name} is deprecated and will be removed in repro 2.0; "
        f"{advice} (the class itself remains at {module_name})",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(module_name), name)
