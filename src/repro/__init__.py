"""EE-FEI: energy-efficient federated edge intelligence for IoT networks.

Reproduction of Wang et al., "Towards Energy-efficient Federated Edge
Intelligence for IoT Networks", ICDCS 2021.

Public API highlights:

* :class:`repro.core.EnergyPlanner` — calibrated constants in, optimal
  integer ``(K, E, T)`` schedule out (the paper's contribution).
* :mod:`repro.fl` — FedAvg substrate (model, clients, coordinator, loop).
* :mod:`repro.data` — synthetic-MNIST dataset substrate.
* :mod:`repro.hardware` — simulated Raspberry-Pi prototype + power meter.
* :mod:`repro.iot` / :mod:`repro.net` — uplink and coordination channels.
* :mod:`repro.experiments` — regenerates every table/figure of §VI.
* :mod:`repro.obs` — structured events, metrics, tracing, profiling;
  attach an :class:`~repro.obs.Observer` to any execution layer.
"""

from repro.core import (
    ACSSolver,
    ConvergenceBound,
    EnergyObjective,
    EnergyParams,
    EnergyPlan,
    EnergyPlanner,
)
from repro.obs import NullObserver, Observer

__version__ = "1.0.0"

__all__ = [
    "ACSSolver",
    "ConvergenceBound",
    "EnergyObjective",
    "EnergyParams",
    "EnergyPlan",
    "EnergyPlanner",
    "NullObserver",
    "Observer",
    "__version__",
]
