"""IoT devices: the sensors that feed data samples to edge servers.

§IV-A of the paper: IoT devices use passive sensors (data *collection*
energy is negligible) and simple low-cost radios without power adaptation,
so uploading one fixed-size data sample always costs the same energy.
The paper quotes NB-IoT at 7.74 mWs per byte.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.constants import NBIOT_ENERGY_PER_BYTE_J

__all__ = ["RadioProfile", "IoTDevice", "NBIOT_PROFILE"]


@dataclass(frozen=True)
class RadioProfile:
    """Per-byte transmission characteristics of an IoT radio technology.

    Attributes:
        name: human-readable technology name.
        energy_per_byte_j: joules consumed to transmit one byte.
        rate_bps: transmission rate in bits per second.
        licensed_band: whether the technology uses licensed spectrum
            (licensed-band radios do not suffer the collision losses of
            §IV-A's unlicensed-band discussion).
    """

    name: str
    energy_per_byte_j: float
    rate_bps: float
    licensed_band: bool

    def __post_init__(self) -> None:
        if self.energy_per_byte_j <= 0:
            raise ValueError(
                f"energy_per_byte_j must be positive; got {self.energy_per_byte_j}"
            )
        if self.rate_bps <= 0:
            raise ValueError(f"rate_bps must be positive; got {self.rate_bps}")


# The paper's reference technology (§IV-A): NB-IoT, licensed band.
# 26 kbit/s is a typical NB-IoT uplink rate.
NBIOT_PROFILE = RadioProfile(
    name="NB-IoT",
    energy_per_byte_j=NBIOT_ENERGY_PER_BYTE_J,
    rate_bps=26_000.0,
    licensed_band=True,
)


@dataclass(frozen=True)
class IoTDevice:
    """One sensor node uploading fixed-size samples to its edge server.

    Attributes:
        device_id: identifier within its edge server's cluster.
        sample_bytes: serialised size of one data sample.  The paper's
            MNIST samples are 28*28 = 784 bytes of pixel data plus a
            1-byte label.
        radio: the device's radio technology.
    """

    device_id: int
    sample_bytes: int = 785
    radio: RadioProfile = NBIOT_PROFILE

    def __post_init__(self) -> None:
        if self.sample_bytes < 1:
            raise ValueError(f"sample_bytes must be positive; got {self.sample_bytes}")

    @property
    def energy_per_sample(self) -> float:
        """Joules to transmit one sample once (no collision losses)."""
        return self.sample_bytes * self.radio.energy_per_byte_j

    @property
    def time_per_sample(self) -> float:
        """Seconds of airtime to transmit one sample once."""
        return 8.0 * self.sample_bytes / self.radio.rate_bps

    def upload_energy(self, n_samples: int, success_probability: float = 1.0) -> float:
        """Expected energy to *successfully* deliver ``n_samples`` samples.

        With per-attempt success probability ``p`` the expected number of
        attempts per sample is ``1/p`` (geometric), so the effective
        per-sample energy is scaled accordingly — this is how the paper's
        constant ``rho_k`` absorbs unlicensed-band collisions.
        """
        if n_samples < 0:
            raise ValueError(f"n_samples must be non-negative; got {n_samples}")
        if not 0.0 < success_probability <= 1.0:
            raise ValueError(
                f"success_probability must be in (0, 1]; got {success_probability}"
            )
        return n_samples * self.energy_per_sample / success_probability
