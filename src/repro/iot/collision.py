"""Unlicensed-band collision model for IoT uplinks.

§IV-A of the paper: technologies operating in the unlicensed band suffer
packet loss from simultaneous transmissions, but "as long as the location
of all the IoT devices can be assumed to be fixed, the probability of
successful data uploading can also be regarded as a fixed value for each
IoT device".  This module derives that fixed value from a slotted-ALOHA
contention model, which is the standard abstraction for uncoordinated
low-power uplinks (LoRaWAN class A, Sigfox, 802.15.4 without CSMA).

A device transmitting in a slot succeeds iff none of the other ``m - 1``
contenders picked the same slot: with per-slot transmission probability
``q``, ``P(success) = (1 - q)^(m-1)``, a constant per device — exactly
the paper's assumption.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SlottedAlohaModel"]


@dataclass(frozen=True)
class SlottedAlohaModel:
    """Fixed-population slotted-ALOHA contention.

    Attributes:
        n_devices: number of contending IoT devices in the cell.
        transmit_probability: probability ``q`` that a backlogged device
            transmits in a given slot.
    """

    n_devices: int
    transmit_probability: float

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise ValueError(f"n_devices must be >= 1; got {self.n_devices}")
        if not 0.0 < self.transmit_probability <= 1.0:
            raise ValueError(
                f"transmit_probability must be in (0, 1]; "
                f"got {self.transmit_probability}"
            )

    @property
    def success_probability(self) -> float:
        """Per-transmission success probability ``(1 - q)^(m - 1)``."""
        return (1.0 - self.transmit_probability) ** (self.n_devices - 1)

    @property
    def expected_attempts_per_packet(self) -> float:
        """Expected transmissions until one succeeds (geometric mean 1/p).

        Raises ``ValueError`` when the success probability underflows to
        zero (a cell so congested that no packet ever gets through —
        callers should treat such a deployment as misconfigured rather
        than receive ``inf`` energy).
        """
        p = self.success_probability
        if p <= 0.0:
            raise ValueError(
                f"success probability underflowed to zero for "
                f"n_devices={self.n_devices}, q={self.transmit_probability}; "
                "the cell is too congested to deliver any packet"
            )
        return 1.0 / p

    def energy_inflation_factor(self) -> float:
        """Multiplier on per-sample energy caused by retransmissions.

        This is the factor folded into the paper's constant ``rho_k``.
        """
        return self.expected_attempts_per_packet

    def simulate_deliveries(
        self, n_packets: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw the attempt count for each of ``n_packets`` packets.

        Returns an integer array of geometric samples; its mean converges
        to :attr:`expected_attempts_per_packet`, which the property tests
        verify against the closed form.
        """
        if n_packets < 0:
            raise ValueError(f"n_packets must be non-negative; got {n_packets}")
        return rng.geometric(self.success_probability, size=n_packets)

    def throughput(self) -> float:
        """Expected successful transmissions per slot across the cell.

        The classic ALOHA throughput ``m q (1-q)^(m-1)``; maximised at
        ``q = 1/m``.  Exposed for the contention ablation benchmark.
        """
        return (
            self.n_devices
            * self.transmit_probability
            * self.success_probability
        )
