"""Battery model for IoT devices: from joules to network lifetime.

The paper motivates energy efficiency with the sustainability of IoT
networks, whose sensors are battery-powered.  This module converts the
per-round data-collection energy of eq. (4) into battery drain and
network lifetime: how many training tasks a sensor fleet can support
before the first (or a given fraction of) devices die.

Used by ``examples``/benchmarks to express the paper's 49.8 % energy
saving in operational terms — roughly twice as many training tasks per
battery charge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BatteryConfig", "Battery", "FleetLifetimeModel"]

# A common AA lithium primary cell stores ~3000 mAh at 1.5 V ~ 16 kJ;
# coin cells are far smaller.  Defaults model a two-AA sensor node.
_DEFAULT_CAPACITY_J = 32_000.0


@dataclass(frozen=True)
class BatteryConfig:
    """Electrical characteristics of one device battery.

    Attributes:
        capacity_j: usable energy, joules.
        self_discharge_per_day: fraction of *capacity* lost per day
            independent of load (primary lithium: ~0.00003).
        usable_fraction: fraction of nominal capacity actually
            deliverable before brown-out (cut-off voltage).
    """

    capacity_j: float = _DEFAULT_CAPACITY_J
    self_discharge_per_day: float = 3e-5
    usable_fraction: float = 0.9

    def __post_init__(self) -> None:
        if self.capacity_j <= 0:
            raise ValueError(f"capacity_j must be positive; got {self.capacity_j}")
        if not 0.0 <= self.self_discharge_per_day < 1.0:
            raise ValueError(
                "self_discharge_per_day must be in [0, 1); "
                f"got {self.self_discharge_per_day}"
            )
        if not 0.0 < self.usable_fraction <= 1.0:
            raise ValueError(
                f"usable_fraction must be in (0, 1]; got {self.usable_fraction}"
            )

    @property
    def usable_j(self) -> float:
        """Deliverable energy before brown-out."""
        return self.capacity_j * self.usable_fraction


class Battery:
    """Mutable state of one device's battery."""

    def __init__(self, config: BatteryConfig | None = None) -> None:
        self.config = config or BatteryConfig()
        self._remaining_j = self.config.usable_j

    @property
    def remaining_j(self) -> float:
        return self._remaining_j

    @property
    def state_of_charge(self) -> float:
        """Remaining fraction of usable capacity in [0, 1]."""
        return self._remaining_j / self.config.usable_j

    @property
    def depleted(self) -> bool:
        return self._remaining_j <= 0.0

    def draw(self, energy_j: float) -> bool:
        """Consume ``energy_j``; returns False when the battery browns out.

        A draw that exceeds the remaining charge empties the battery (the
        device dies mid-transmission) rather than leaving it negative.
        """
        if energy_j < 0:
            raise ValueError(f"energy_j must be non-negative; got {energy_j}")
        if energy_j > self._remaining_j:
            self._remaining_j = 0.0
            return False
        self._remaining_j -= energy_j
        return True

    def age(self, days: float) -> None:
        """Apply calendar self-discharge for ``days`` of shelf time."""
        if days < 0:
            raise ValueError(f"days must be non-negative; got {days}")
        loss = self.config.capacity_j * self.config.self_discharge_per_day * days
        self._remaining_j = max(0.0, self._remaining_j - loss)


class FleetLifetimeModel:
    """Lifetime of a sensor fleet under a recurring training workload.

    The workload is one EE-FEI training *task*: each task costs every
    participating cluster's devices ``rho * n_k`` joules of uplink energy
    per round times the number of rounds the schedule runs.  Spreading
    that cost evenly over a cluster's devices (round-robin polling),
    each device pays ``task_energy / n_devices`` per task.
    """

    def __init__(
        self,
        n_devices: int,
        per_task_cluster_energy_j: float,
        battery: BatteryConfig | None = None,
    ) -> None:
        if n_devices < 1:
            raise ValueError(f"n_devices must be >= 1; got {n_devices}")
        if per_task_cluster_energy_j <= 0:
            raise ValueError(
                "per_task_cluster_energy_j must be positive; "
                f"got {per_task_cluster_energy_j}"
            )
        self.n_devices = n_devices
        self.per_task_cluster_energy_j = per_task_cluster_energy_j
        self.battery = battery or BatteryConfig()

    @property
    def per_task_device_energy_j(self) -> float:
        """Energy each device pays per training task (even spread)."""
        return self.per_task_cluster_energy_j / self.n_devices

    def tasks_until_depletion(self) -> int:
        """Number of complete training tasks one battery charge supports."""
        return int(self.battery.usable_j // self.per_task_device_energy_j)

    def lifetime_days(self, tasks_per_day: float) -> float:
        """Days until depletion at a given task rate, with self-discharge.

        Solves ``usable = rate*drain*d + capacity*sd*d`` for ``d``.
        """
        if tasks_per_day <= 0:
            raise ValueError(f"tasks_per_day must be positive; got {tasks_per_day}")
        daily_load = tasks_per_day * self.per_task_device_energy_j
        daily_idle = self.battery.capacity_j * self.battery.self_discharge_per_day
        return self.battery.usable_j / (daily_load + daily_idle)

    def simulate_fleet(
        self,
        n_tasks: int,
        rng: np.random.Generator,
        load_spread: float = 0.1,
    ) -> np.ndarray:
        """Simulate per-device charge after ``n_tasks`` tasks.

        Each device's per-task draw is jittered by ``load_spread``
        (relative, truncated at zero) to model unequal polling; returns
        the state-of-charge array, clipped at zero for dead devices.
        """
        if n_tasks < 0:
            raise ValueError(f"n_tasks must be non-negative; got {n_tasks}")
        if not 0.0 <= load_spread < 1.0:
            raise ValueError(f"load_spread must be in [0, 1); got {load_spread}")
        draws = self.per_task_device_energy_j * np.maximum(
            rng.normal(1.0, load_spread, size=(n_tasks, self.n_devices)), 0.0
        )
        spent = draws.sum(axis=0)
        remaining = np.maximum(self.battery.usable_j - spent, 0.0)
        return remaining / self.battery.usable_j
