"""IoT network substrate: devices, contention, and data-collection energy."""

from repro.iot.battery import Battery, BatteryConfig, FleetLifetimeModel
from repro.iot.collision import SlottedAlohaModel
from repro.iot.device import NBIOT_PROFILE, IoTDevice, RadioProfile
from repro.iot.network import CollectionReport, IoTCluster, IoTNetwork

__all__ = [
    "Battery",
    "BatteryConfig",
    "FleetLifetimeModel",
    "SlottedAlohaModel",
    "NBIOT_PROFILE",
    "IoTDevice",
    "RadioProfile",
    "CollectionReport",
    "IoTCluster",
    "IoTNetwork",
]
