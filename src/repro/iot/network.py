"""The IoT network: clusters of sensors feeding each edge server.

Step (1) of each FEI round: every edge server ``k`` requests ``n_k``
fresh data samples from its associated IoT devices.  This module
aggregates the per-device energy model into the per-server constant
``rho_k`` of eq. (4) and simulates the collection process (which devices
send how many samples, with what energy and airtime).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.iot.collision import SlottedAlohaModel
from repro.iot.device import IoTDevice

__all__ = ["CollectionReport", "IoTCluster", "IoTNetwork"]


@dataclass(frozen=True)
class CollectionReport:
    """Outcome of collecting ``n`` samples for one edge server."""

    edge_server_id: int
    n_samples: int
    energy_j: float
    airtime_s: float
    attempts: int


class IoTCluster:
    """The IoT devices associated with one edge server.

    Args:
        edge_server_id: the edge server this cluster uploads to.
        devices: sensor nodes in the cluster (all upload to the same
            server).
        contention: optional unlicensed-band collision model shared by
            the cluster; ``None`` models a licensed-band deployment with
            no collision losses.
    """

    def __init__(
        self,
        edge_server_id: int,
        devices: list[IoTDevice],
        contention: SlottedAlohaModel | None = None,
    ) -> None:
        if not devices:
            raise ValueError("cluster needs at least one device")
        self.edge_server_id = edge_server_id
        self.devices = devices
        self.contention = contention

    @property
    def success_probability(self) -> float:
        """Per-transmission success probability for cluster devices."""
        return self.contention.success_probability if self.contention else 1.0

    @property
    def rho(self) -> float:
        """The per-sample upload energy ``rho_k`` of eq. (4), in joules.

        The cluster average of per-device sample energy, inflated by the
        expected retransmission count.  Constant across rounds — the
        paper's key modelling assumption for data collection.
        """
        per_device = float(np.mean([d.energy_per_sample for d in self.devices]))
        return per_device / self.success_probability

    def collection_energy(self, n_samples: int) -> float:
        """Expected energy for the cluster to deliver ``n_samples`` — eq. (4)."""
        if n_samples < 0:
            raise ValueError(f"n_samples must be non-negative; got {n_samples}")
        return self.rho * n_samples

    def collect(self, n_samples: int, rng: np.random.Generator) -> CollectionReport:
        """Simulate one collection: draws per-packet retransmissions.

        Samples are spread round-robin over the cluster's devices, as a
        real edge server would poll its sensors.
        """
        if n_samples < 0:
            raise ValueError(f"n_samples must be non-negative; got {n_samples}")
        energy = 0.0
        airtime = 0.0
        attempts_total = 0
        if n_samples:
            device_ids = np.arange(n_samples) % len(self.devices)
            if self.contention is not None:
                attempts = self.contention.simulate_deliveries(n_samples, rng)
            else:
                attempts = np.ones(n_samples, dtype=np.int64)
            for device_index, n_attempts in zip(device_ids, attempts):
                device = self.devices[int(device_index)]
                energy += n_attempts * device.energy_per_sample
                airtime += n_attempts * device.time_per_sample
                attempts_total += int(n_attempts)
        return CollectionReport(
            edge_server_id=self.edge_server_id,
            n_samples=n_samples,
            energy_j=energy,
            airtime_s=airtime,
            attempts=attempts_total,
        )


class IoTNetwork:
    """All IoT clusters of the FEI system (one per edge server)."""

    def __init__(self, clusters: list[IoTCluster]) -> None:
        if not clusters:
            raise ValueError("network needs at least one cluster")
        ids = [c.edge_server_id for c in clusters]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate edge_server_id across clusters")
        self._clusters = {c.edge_server_id: c for c in clusters}

    @classmethod
    def homogeneous(
        cls,
        n_edge_servers: int,
        devices_per_cluster: int,
        sample_bytes: int = 785,
        contention: SlottedAlohaModel | None = None,
    ) -> "IoTNetwork":
        """Build a uniform network: identical clusters for every server."""
        if n_edge_servers < 1 or devices_per_cluster < 1:
            raise ValueError("need at least one server and one device per cluster")
        clusters = [
            IoTCluster(
                edge_server_id=server_id,
                devices=[
                    IoTDevice(device_id=i, sample_bytes=sample_bytes)
                    for i in range(devices_per_cluster)
                ],
                contention=contention,
            )
            for server_id in range(n_edge_servers)
        ]
        return cls(clusters)

    @property
    def n_clusters(self) -> int:
        return len(self._clusters)

    def cluster(self, edge_server_id: int) -> IoTCluster:
        if edge_server_id not in self._clusters:
            raise KeyError(f"no cluster for edge server {edge_server_id}")
        return self._clusters[edge_server_id]

    def rho_values(self) -> dict[int, float]:
        """Per-server ``rho_k`` constants for the energy optimizer."""
        return {sid: c.rho for sid, c in self._clusters.items()}

    def mean_rho(self) -> float:
        """``E[rho_k]`` — the expectation entering eq. (12)'s ``B1``."""
        return float(np.mean(list(self.rho_values().values())))

    def collect_round(
        self, requests: dict[int, int], rng: np.random.Generator
    ) -> dict[int, CollectionReport]:
        """Simulate step (1) for one round: ``requests[k] = n_k``."""
        return {
            sid: self.cluster(sid).collect(n, rng) for sid, n in requests.items()
        }
