"""Process-local metrics: counters, gauges, and fixed-bucket histograms.

The registry is the numeric side of the observability substrate: where
the event log answers "what happened, in what order", the metrics answer
"how much, in total".  Instruments are identified by a name plus a label
set, Prometheus-style — ``energy.joules{phase=train}`` and
``energy.joules{phase=upload}`` are distinct counters that can be summed
over the ``phase`` label to reconcile against a run's total energy.

Everything is plain Python (single process, single thread, no sockets):
``snapshot()`` returns a JSON-ready dict and ``render_text()`` an aligned
table for terminals.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_DURATION_BUCKETS_S",
    "parse_metric_name",
]

# Upper bucket bounds for duration histograms: 10 us to 10 min, roughly
# logarithmic.  Values above the last bound land in the +inf overflow.
DEFAULT_DURATION_BUCKETS_S: tuple[float, ...] = (
    1e-5,
    1e-4,
    1e-3,
    1e-2,
    1e-1,
    1.0,
    10.0,
    60.0,
    600.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, Any]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def render_metric_name(name: str, labels: dict[str, Any] | _LabelKey) -> str:
    """Canonical ``name{k=v,...}`` rendering (plain ``name`` if unlabelled)."""
    items = _label_key(labels) if isinstance(labels, dict) else labels
    if not items:
        return name
    inner = ",".join(f"{k}={v}" for k, v in items)
    return f"{name}{{{inner}}}"


def parse_metric_name(full_name: str) -> tuple[str, dict[str, str]]:
    """Inverse of :func:`render_metric_name` for snapshot keys.

    Label *values* containing ``,`` or ``=`` are not representable in the
    rendered form; instruments in this codebase use simple identifier-ish
    values (phases, unit names, pids), for which the round trip is exact.
    """
    if not full_name.endswith("}") or "{" not in full_name:
        return full_name, {}
    name, _, inner = full_name[:-1].partition("{")
    labels: dict[str, str] = {}
    for item in inner.split(","):
        if not item:
            continue
        key, _, value = item.partition("=")
        labels[key] = value
    return name, labels


class _Instrument:
    """Common identity of all instrument kinds."""

    kind = "instrument"

    def __init__(self, name: str, labels: _LabelKey) -> None:
        self.name = name
        self.labels = labels

    @property
    def full_name(self) -> str:
        return render_metric_name(self.name, self.labels)


class Counter(_Instrument):
    """Monotonically increasing total (events, bytes, joules, ...)."""

    kind = "counter"

    def __init__(self, name: str, labels: _LabelKey) -> None:
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount}")
        self.value += amount


class Gauge(_Instrument):
    """Last-write-wins instantaneous value (queue depth, objective, ...)."""

    kind = "gauge"

    def __init__(self, name: str, labels: _LabelKey) -> None:
        super().__init__(name, labels)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram(_Instrument):
    """Fixed-bucket histogram with exact count/sum/min/max side-cars.

    ``buckets`` are strictly increasing finite *upper* bounds; one
    implicit overflow bucket catches everything above the last bound.
    Bucket membership is ``value <= bound`` (inclusive upper edges), so
    an observation exactly on an edge lands in that edge's bucket.
    """

    kind = "histogram"

    def __init__(
        self, name: str, labels: _LabelKey, buckets: tuple[float, ...]
    ) -> None:
        super().__init__(name, labels)
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b2 <= b1 for b1, b2 in zip(buckets, buckets[1:])):
            raise ValueError(f"bucket bounds must strictly increase; got {buckets}")
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(buckets) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise ValueError("histogram has no observations")
        return self.sum / self.count

    def to_dict(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Get-or-create store of metric instruments keyed by (name, labels)."""

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, _LabelKey], _Instrument] = {}

    def _get_or_create(
        self, cls: type, name: str, labels: dict[str, Any], *args: Any
    ) -> Any:
        if not name:
            raise ValueError("metric name must be a non-empty string")
        key = (name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = cls(name, key[1], *args)
            self._instruments[key] = instrument
        elif not isinstance(instrument, cls):
            raise ValueError(
                f"metric {render_metric_name(name, labels)!r} already "
                f"registered as a {instrument.kind}, not a {cls.kind}"
            )
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] | None = None,
        **labels: Any,
    ) -> Histogram:
        histogram = self._get_or_create(
            Histogram, name, labels, tuple(buckets or DEFAULT_DURATION_BUCKETS_S)
        )
        if buckets is not None and histogram.buckets != tuple(
            float(b) for b in buckets
        ):
            raise ValueError(
                f"histogram {render_metric_name(name, labels)!r} already "
                f"registered with buckets {histogram.buckets}"
            )
        return histogram

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator[_Instrument]:
        return iter(
            sorted(self._instruments.values(), key=lambda i: (i.name, i.labels))
        )

    def value(self, name: str, **labels: Any) -> float:
        """Current value of a counter/gauge; ``KeyError`` when absent."""
        instrument = self._instruments[(name, _label_key(labels))]
        if isinstance(instrument, Histogram):
            raise ValueError(
                f"{instrument.full_name!r} is a histogram; read .sum/.count"
            )
        return instrument.value  # type: ignore[union-attr]

    def sum_values(self, name: str) -> float:
        """Sum of a counter/gauge family across all its label sets.

        E.g. ``sum_values("energy.joules")`` totals the per-phase energy
        counters, which must reconcile with a run's total energy.
        """
        total = 0.0
        found = False
        for (metric_name, _), instrument in self._instruments.items():
            if metric_name != name or isinstance(instrument, Histogram):
                continue
            total += instrument.value  # type: ignore[union-attr]
            found = True
        if not found:
            raise KeyError(f"no counter/gauge named {name!r}")
        return total

    def to_records(self) -> list[dict[str, Any]]:
        """Structured JSON-ready record per instrument, in sorted order.

        Unlike :meth:`snapshot` (whose keys are *rendered* names), records
        keep name, labels, and kind as separate fields, so cross-process
        aggregation (:mod:`repro.obs.aggregate`) can re-register each
        instrument — with extra labels — without parsing rendered names.
        """
        records: list[dict[str, Any]] = []
        for instrument in self:
            record: dict[str, Any] = {
                "name": instrument.name,
                "labels": dict(instrument.labels),
                "kind": instrument.kind,
            }
            if isinstance(instrument, Histogram):
                record["buckets"] = list(instrument.buckets)
                record["counts"] = list(instrument.counts)
                record["count"] = instrument.count
                record["sum"] = instrument.sum
                record["min"] = instrument.min
                record["max"] = instrument.max
            else:
                record["value"] = instrument.value  # type: ignore[union-attr]
            records.append(record)
        return records

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready ``{rendered_name: value-or-histogram-dict}`` mapping."""
        result: dict[str, Any] = {}
        for instrument in self:
            if isinstance(instrument, Histogram):
                result[instrument.full_name] = instrument.to_dict()
            else:
                result[instrument.full_name] = instrument.value  # type: ignore[union-attr]
        return result

    def render_text(self) -> str:
        """Aligned text table of every instrument (terminal-friendly)."""
        rows: list[tuple[str, str, str]] = []
        for instrument in self:
            if isinstance(instrument, Histogram):
                if instrument.count:
                    summary = (
                        f"count={instrument.count} sum={instrument.sum:.6g} "
                        f"mean={instrument.mean:.6g} min={instrument.min:.6g} "
                        f"max={instrument.max:.6g}"
                    )
                else:
                    summary = "count=0"
            else:
                summary = f"{instrument.value:.6g}"
            rows.append((instrument.full_name, instrument.kind, summary))
        if not rows:
            return "(no metrics recorded)"
        name_width = max(len(r[0]) for r in rows)
        kind_width = max(len(r[1]) for r in rows)
        return "\n".join(
            f"{name:<{name_width}}  {kind:<{kind_width}}  {summary}"
            for name, kind, summary in rows
        )
