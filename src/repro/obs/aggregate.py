"""Campaign-wide metric aggregation and reconciliation.

One campaign's telemetry ends up as many per-unit metric snapshots —
one per worker process, stored next to each unit's artifacts.  This
module folds them back into a single registry and *checks the fold*:
the paper's accounting story only survives parallelisation if energy
and round counters aggregate to the same totals no matter which
backend trained a unit or how many worker processes the campaign used.

* :func:`merge_metric_records` — fold structured metric records (from
  :meth:`~repro.obs.metrics.MetricsRegistry.to_records`) into a target
  registry, optionally attaching extra labels.  Counters merge by
  addition, histograms bucket-wise, gauges last-write-wins — which is
  exactly why records are safe to apply more than once *per process*
  but must be applied once per source snapshot.
* :func:`records_from_snapshot` — recover records from an Observer's
  ``metrics.snapshot`` event, falling back to parsing rendered names
  for telemetry written before structured records existed.
* :class:`CampaignTelemetry` — the reducer: per-unit snapshots in, one
  campaign-wide registry out, plus :meth:`reconcile` (per-unit totals
  vs the unit's reported measurements, cross-backend agreement) and a
  terminal-friendly :meth:`render_text`.

Determinism note: :meth:`CampaignTelemetry.totals` folds units in
sorted-key order, so the campaign-wide counter values are a pure
function of the per-unit snapshots — two stores holding bit-identical
unit telemetry produce bit-identical totals, regardless of the worker
count or completion order that produced either store.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.obs.metrics import Histogram, MetricsRegistry, parse_metric_name

__all__ = [
    "merge_metric_records",
    "merge_histogram_record",
    "records_from_snapshot",
    "UnitTelemetry",
    "CampaignTelemetry",
]


def merge_histogram_record(histogram: Histogram, record: dict) -> None:
    """Fold one histogram record into an existing instrument in place."""
    counts = record.get("counts", ())
    if len(counts) != len(histogram.counts):
        raise ValueError(
            f"histogram {histogram.full_name!r}: incompatible bucket "
            f"count {len(counts)} (have {len(histogram.counts)})"
        )
    for i, count in enumerate(counts):
        histogram.counts[i] += int(count)
    histogram.count += int(record.get("count", 0))
    histogram.sum += float(record.get("sum", 0.0))
    for bound, pick in (("min", min), ("max", max)):
        value = record.get(bound)
        if value is None:
            continue
        current = getattr(histogram, bound)
        setattr(
            histogram,
            bound,
            float(value) if current is None else pick(current, float(value)),
        )


def merge_metric_records(
    registry: MetricsRegistry,
    records: Iterable[dict],
    **extra_labels: Any,
) -> None:
    """Fold structured metric records into ``registry``.

    ``extra_labels`` (e.g. ``unit=...``, ``worker=...``) are attached to
    every instrument, keeping per-source series distinct while their
    family still sums to the global total via
    :meth:`MetricsRegistry.sum_values`.  A record whose labels collide
    with an extra label keeps its own value (the source knew better).
    """
    for record in records:
        labels = {**extra_labels, **record.get("labels", {})}
        name = record["name"]
        kind = record.get("kind", "counter")
        if kind == "counter":
            registry.counter(name, **labels).inc(float(record["value"]))
        elif kind == "gauge":
            registry.gauge(name, **labels).set(float(record["value"]))
        elif kind == "histogram":
            histogram = registry.histogram(
                name, buckets=tuple(record["buckets"]), **labels
            )
            merge_histogram_record(histogram, record)
        else:
            raise ValueError(f"unknown metric record kind {kind!r}")


def records_from_snapshot(snapshot: dict) -> list[dict]:
    """Metric records out of an Observer ``snapshot()`` document.

    Prefers the structured ``metric_records`` list; for snapshots
    written before it existed, falls back to parsing the rendered
    ``metrics`` mapping, where scalar instruments are assumed to be
    counters (gauges are indistinguishable in that form — acceptable
    for legacy stores, whose gauges were all last-write throwaways).
    """
    records = snapshot.get("metric_records")
    if records is not None:
        return list(records)
    fallback = []
    for full_name, value in snapshot.get("metrics", {}).items():
        name, labels = parse_metric_name(full_name)
        if isinstance(value, dict):
            fallback.append(
                {"name": name, "labels": labels, "kind": "histogram", **value}
            )
        else:
            fallback.append(
                {
                    "name": name,
                    "labels": labels,
                    "kind": "counter",
                    "value": value,
                }
            )
    return fallback


@dataclass(frozen=True)
class UnitTelemetry:
    """One unit's contribution to the campaign-wide aggregate.

    Attributes:
        key: the unit's content key (its identity in the store).
        name: human-readable unit name.
        records: the unit's final metric records.
        reported: the unit's ``result.json`` measurement snapshot (used
            by reconciliation as the independent ground truth).
    """

    key: str
    name: str
    records: tuple[dict, ...]
    reported: dict = field(default_factory=dict)

    def sum_counters(self, metric: str) -> float:
        """Sum of one counter family across this unit's label sets."""
        return math.fsum(
            float(r["value"])
            for r in self.records
            if r["name"] == metric and r.get("kind") == "counter"
        )


class CampaignTelemetry:
    """Reducer folding per-unit metric snapshots into campaign totals."""

    def __init__(self, campaign_name: str) -> None:
        self.campaign_name = campaign_name
        self._units: dict[str, UnitTelemetry] = {}

    def add_unit(
        self,
        key: str,
        name: str,
        records: Iterable[dict],
        reported: dict | None = None,
    ) -> None:
        """Register one unit's final metric records (replaces any prior)."""
        self._units[key] = UnitTelemetry(
            key=key,
            name=name,
            records=tuple(records),
            reported=dict(reported or {}),
        )

    def __len__(self) -> int:
        return len(self._units)

    @property
    def units(self) -> tuple[UnitTelemetry, ...]:
        """Registered units in sorted-key order (the fold order)."""
        return tuple(self._units[key] for key in sorted(self._units))

    # ------------------------------------------------------------------
    # Aggregation.
    # ------------------------------------------------------------------
    def totals(self) -> MetricsRegistry:
        """One campaign-wide registry: counters summed, histograms merged.

        Gauges are instantaneous per-process values with no meaningful
        campaign-wide sum, so they keep a ``unit`` label instead of
        collapsing.  Units fold in sorted-key order, making the result
        deterministic for a given set of snapshots.
        """
        registry = MetricsRegistry()
        for unit in self.units:
            scalars = [r for r in unit.records if r.get("kind") != "gauge"]
            gauges = [r for r in unit.records if r.get("kind") == "gauge"]
            merge_metric_records(registry, scalars)
            merge_metric_records(registry, gauges, unit=unit.name)
        return registry

    def sum_over_units(self, metric: str) -> float:
        """Σ over units of the unit's own counter-family sum.

        Exact-sum (``math.fsum``) over per-unit values in sorted-key
        order — the deterministic quantity the cross-process
        reconciliation tests compare bit-for-bit.
        """
        return math.fsum(
            unit.sum_counters(metric) for unit in self.units
        )

    # ------------------------------------------------------------------
    # Reconciliation.
    # ------------------------------------------------------------------
    def reconcile(
        self, rel_tolerance: float = 1e-9, abs_tolerance: float = 1e-9
    ) -> list[str]:
        """Cross-check the aggregate; returns the discrepancies found.

        Three invariants, mirroring the single-process telemetry tests:

        1. per unit, the summed ``energy.joules`` counters equal the
           unit's independently reported ``total_energy_j``;
        2. per unit, the ``fl.rounds`` counter equals the reported
           round count;
        3. units that differ only in execution backend (same K, E,
           seed) report identical energy — the engine-equivalence
           contract, checked at a looser 1e-6 relative tolerance since
           the batched backend is numerically (not bit-) identical.
        """
        problems: list[str] = []
        by_cell: dict[tuple, list[UnitTelemetry]] = {}
        for unit in self.units:
            reported = unit.reported
            if not reported:
                continue
            energy = unit.sum_counters("energy.joules")
            expected = float(reported.get("total_energy_j", energy))
            if not math.isclose(
                energy, expected, rel_tol=rel_tolerance, abs_tol=abs_tolerance
            ):
                problems.append(
                    f"{unit.name}: telemetry energy {energy!r} J != "
                    f"reported {expected!r} J"
                )
            rounds = unit.sum_counters("fl.rounds")
            expected_rounds = float(reported.get("rounds", rounds))
            if rounds != expected_rounds:
                problems.append(
                    f"{unit.name}: telemetry rounds {rounds:g} != "
                    f"reported {expected_rounds:g}"
                )
            cell = (
                reported.get("participants"),
                reported.get("epochs"),
                reported.get("seed"),
            )
            by_cell.setdefault(cell, []).append(unit)
        for cell, units in by_cell.items():
            backends = {u.reported.get("backend") for u in units}
            if len(backends) < 2:
                continue
            energies = [u.sum_counters("energy.joules") for u in units]
            low, high = min(energies), max(energies)
            if not math.isclose(low, high, rel_tol=1e-6, abs_tol=1e-6):
                problems.append(
                    f"cell (K={cell[0]}, E={cell[1]}, seed={cell[2]}): "
                    f"cross-backend energy disagrees "
                    f"({low:g} .. {high:g} J across {sorted(backends)})"
                )
        return problems

    # ------------------------------------------------------------------
    # Rendering.
    # ------------------------------------------------------------------
    def render_text(self) -> str:
        """Campaign-wide metrics table plus the headline energy line."""
        if not self._units:
            return "(no unit telemetry recorded)"
        totals = self.totals()
        header = (
            f"campaign {self.campaign_name!r} — aggregated telemetry over "
            f"{len(self)} units"
        )
        energy = self.sum_over_units("energy.joules")
        return (
            f"{header}\n{totals.render_text()}\n"
            f"campaign energy (exact per-unit fold): {energy:.6f} J"
        )
