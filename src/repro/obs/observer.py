"""The :class:`Observer` facade: one handle bundling all four substrates.

Instrumented components accept ``observer: Observer | None = None`` and
do nothing when it is ``None`` (or a :class:`NullObserver`).  The
convention for call sites::

    self._observer = active_or_none(observer)
    ...
    if self._observer is not None:
        self._observer.emit("round.start", round=t)

so that disabled observability costs exactly one ``is not None`` check
per instrumentation point — no event dict construction, no metric
lookups, no clock reads.

:data:`NULL_OBSERVER` is the module-level no-op backend: it satisfies
the full :class:`Observer` API (so code holding an observer
unconditionally still works) while recording nothing.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Callable

from repro.obs.events import EventLog, ObsEvent
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiling import HotPathProfiler
from repro.obs.tracing import NullTracer, Tracer

__all__ = ["Observer", "NullObserver", "NULL_OBSERVER", "active_or_none"]


class Observer:
    """Bundle of event log + metrics registry + tracer + profiler.

    Args:
        profile_hot_paths: enable the per-iteration hot-path timers
            (off by default — events/metrics/spans are cheap, inner-loop
            clock reads are not).
        clock: shared monotonic time source for events, spans, and
            profiler timers (injectable for deterministic tests).
    """

    enabled = True

    def __init__(
        self,
        profile_hot_paths: bool = False,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.events = EventLog(clock=clock)
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock=clock)
        self.profiler = HotPathProfiler(
            self.metrics, enabled=profile_hot_paths, clock=clock
        )

    # ------------------------------------------------------------------
    # Convenience pass-throughs (the facade most call sites use).
    # ------------------------------------------------------------------
    def emit(
        self, category: str, sim_time: float | None = None, **fields: Any
    ) -> ObsEvent | None:
        return self.events.emit(category, sim_time=sim_time, **fields)

    def counter(self, name: str, **labels: Any) -> Counter:
        return self.metrics.counter(name, **labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self.metrics.gauge(name, **labels)

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None, **labels: Any
    ) -> Histogram:
        return self.metrics.histogram(name, buckets=buckets, **labels)

    def span(self, name: str, **attributes: Any):
        return self.tracer.span(name, **attributes)

    # ------------------------------------------------------------------
    # Export.
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """Combined JSON-ready view: metrics snapshot + trace forest.

        ``metrics`` is the rendered-name mapping (human-oriented);
        ``metric_records`` the structured per-instrument list that
        :mod:`repro.obs.aggregate` folds across processes.
        """
        return {
            "metrics": self.metrics.snapshot(),
            "metric_records": self.metrics.to_records(),
            "n_events": len(self.events),
            "spans": self.tracer.to_dicts(),
        }

    def dump_jsonl(self, path: str | Path) -> None:
        """Write the full telemetry of a run to one JSONL file.

        Every event becomes one line; a final ``metrics.snapshot`` line
        carries the metrics registry (and span forest), so the file is
        self-contained.  :meth:`repro.obs.events.EventLog.load_jsonl`
        reads the same file back — the snapshot line is an ordinary
        event whose fields hold the snapshot.
        """
        self.emit("metrics.snapshot", **self.snapshot())
        self.events.save_jsonl(path)

    def render_text(self) -> str:
        """Metrics table + span tree, for terminals."""
        return (
            f"events: {len(self.events)}\n"
            f"--- metrics ---\n{self.metrics.render_text()}\n"
            f"--- spans ---\n{self.tracer.render_text()}"
        )


class _NullEventLog(EventLog):
    """Event log that drops everything."""

    def emit(
        self, category: str, sim_time: float | None = None, **fields: Any
    ) -> None:  # type: ignore[override]
        return None


class _NullInstrument(Counter, Gauge):  # type: ignore[misc]
    """A metric accepting every write and retaining nothing."""

    def __init__(self) -> None:
        Counter.__init__(self, "null", ())

    def inc(self, amount: float = 1.0) -> None:
        return None

    def dec(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


_NULL_INSTRUMENT = _NullInstrument()


class _NullRegistry(MetricsRegistry):
    """Registry handing out the shared write-only null instrument."""

    def counter(self, name: str, **labels: Any) -> Counter:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, buckets: tuple[float, ...] | None = None, **labels: Any
    ) -> Histogram:
        return _NULL_INSTRUMENT  # type: ignore[return-value]


class NullObserver(Observer):
    """No-op backend: full API, zero recording, negligible overhead."""

    enabled = False

    def __init__(self) -> None:
        self.events = _NullEventLog()
        self.metrics = _NullRegistry()
        self.tracer = NullTracer()
        self.profiler = HotPathProfiler(self.metrics, enabled=False)

    def emit(
        self, category: str, sim_time: float | None = None, **fields: Any
    ) -> None:  # type: ignore[override]
        return None


NULL_OBSERVER = NullObserver()


def active_or_none(observer: Observer | None) -> Observer | None:
    """Normalise an optional observer for instrumented components.

    Returns ``None`` for both ``None`` and disabled (null) observers, so
    call sites guard every instrumentation point with a single
    ``is not None`` check.
    """
    if observer is None or not observer.enabled:
        return None
    return observer
