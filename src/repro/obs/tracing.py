"""Lightweight span tracing: nested timed regions as a tree.

A :class:`Tracer` maintains a stack of open :class:`Span` objects;
``with tracer.span("round", round=t):`` opens a child of whatever span
is currently active, times it with ``perf_counter``, and files it under
its parent.  The resulting forest doubles as a profiler (span durations)
and a trace exporter (:meth:`Span.to_dict` is JSON-ready).

Single-threaded by design — the whole reproduction runs one process on
one core, so the active-span stack needs no context variables.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

__all__ = ["Span", "Tracer", "NullTracer", "NULL_SPAN"]


class Span:
    """One timed region of execution, possibly with child spans."""

    __slots__ = ("name", "attributes", "start_s", "end_s", "children")

    def __init__(self, name: str, attributes: dict[str, Any], start_s: float) -> None:
        self.name = name
        self.attributes = attributes
        self.start_s = start_s
        self.end_s: float | None = None
        self.children: list["Span"] = []

    @property
    def finished(self) -> bool:
        return self.end_s is not None

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            raise ValueError(f"span {self.name!r} has not finished")
        return self.end_s - self.start_s

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach or update one attribute on an open or closed span."""
        self.attributes[key] = value

    def to_dict(self) -> dict[str, Any]:
        """Recursive JSON-ready form of this span and its subtree."""
        return {
            "name": self.name,
            "attributes": dict(self.attributes),
            "start_s": self.start_s,
            "duration_s": self.duration_s if self.finished else None,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        """Rebuild a span tree from :meth:`to_dict` output.

        An unfinished span (``duration_s`` null — e.g. a worker killed
        mid-region) stays unfinished after the round trip.
        """
        try:
            span = cls(
                str(data["name"]),
                dict(data.get("attributes", {})),
                float(data["start_s"]),
            )
            duration = data.get("duration_s")
            if duration is not None:
                span.end_s = span.start_s + float(duration)
            span.children = [
                cls.from_dict(child) for child in data.get("children", ())
            ]
        except (KeyError, TypeError, ValueError) as error:
            raise ValueError(f"malformed span record: {error}") from None
        return span

    def iter_spans(self) -> Iterator["Span"]:
        """Pre-order walk over this span and every descendant."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration_s:.6f}s" if self.finished else "open"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


class Tracer:
    """Builds a forest of spans from nested ``with tracer.span(...)`` blocks."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    @property
    def current(self) -> Span | None:
        """The innermost open span, or ``None`` outside any span."""
        return self._stack[-1] if self._stack else None

    @property
    def depth(self) -> int:
        return len(self._stack)

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a span as a child of the current one; close it on exit."""
        if not name:
            raise ValueError("span name must be a non-empty string")
        span = Span(name, attributes, self._clock())
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        try:
            yield span
        finally:
            span.end_s = self._clock()
            self._stack.pop()

    def iter_spans(self) -> Iterator[Span]:
        """Pre-order walk over every recorded span (all roots)."""
        for root in self.roots:
            yield from root.iter_spans()

    def find(self, name: str) -> list[Span]:
        """All recorded spans with the given name."""
        return [s for s in self.iter_spans() if s.name == name]

    def to_dicts(self) -> list[dict[str, Any]]:
        """JSON-ready list of root span trees."""
        return [root.to_dict() for root in self.roots]

    def render_text(self, indent: str = "  ") -> str:
        """Indented text rendering of the span forest."""
        lines: list[str] = []

        def walk(span: Span, depth: int) -> None:
            duration = (
                f"{span.duration_s * 1e3:.3f} ms" if span.finished else "(open)"
            )
            attrs = (
                " " + " ".join(f"{k}={v}" for k, v in span.attributes.items())
                if span.attributes
                else ""
            )
            lines.append(f"{indent * depth}{span.name} {duration}{attrs}")
            for child in span.children:
                walk(child, depth + 1)

        for root in self.roots:
            walk(root, 0)
        return "\n".join(lines) if lines else "(no spans recorded)"


class _NullSpanContext:
    """Reusable no-op context manager yielding the shared null span."""

    __slots__ = ()

    def __enter__(self) -> Span:
        return NULL_SPAN

    def __exit__(self, *exc_info: object) -> None:
        return None


class _NullSpan(Span):
    """Shared, permanently-finished span handed out by :class:`NullTracer`."""

    __slots__ = ()

    def set_attribute(self, key: str, value: Any) -> None:
        return None


NULL_SPAN = _NullSpan("null", {}, 0.0)
NULL_SPAN.end_s = 0.0

_NULL_CONTEXT = _NullSpanContext()


class NullTracer(Tracer):
    """Tracer that records nothing; ``span`` costs one attribute lookup."""

    def __init__(self) -> None:
        super().__init__()

    def span(self, name: str, **attributes: Any) -> _NullSpanContext:  # type: ignore[override]
        return _NULL_CONTEXT
