"""Opt-in hot-path timers feeding histogram metrics.

The tracer is the right tool for coarse regions (a round, an experiment)
but too heavy for inner loops: wrapping every SGD epoch or DES heap pop
in a span would allocate a tree node per iteration.  The profiler instead
aggregates ``perf_counter`` deltas straight into a fixed-bucket
:class:`~repro.obs.metrics.Histogram` — constant memory regardless of
iteration count.

Profiling is *opt-in on top of observability*: an attached observer
records events and metrics, but hot-path timers only fire when the
profiler is explicitly enabled, so the default observer adds no
per-iteration clock reads.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = ["HotPathProfiler", "BoundTimer"]


class _NoopTimer:
    """Shared do-nothing context manager for disabled profilers."""

    __slots__ = ()

    def __enter__(self) -> "_NoopTimer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


_NOOP_TIMER = _NoopTimer()


class BoundTimer:
    """A timer pre-bound to one histogram — for use inside hot loops.

    Resolving the histogram (dict lookup + label normalisation) happens
    once at bind time; each ``with`` entry then costs two clock reads and
    one ``observe``.  Not re-entrant: one instance times one region at a
    time (bind separate timers for nested regions).
    """

    __slots__ = ("_histogram", "_clock", "_started")

    def __init__(self, histogram: Histogram, clock: Callable[[], float]) -> None:
        self._histogram = histogram
        self._clock = clock
        self._started = 0.0

    def __enter__(self) -> "BoundTimer":
        self._started = self._clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._histogram.observe(self._clock() - self._started)


class HotPathProfiler:
    """Aggregates timed regions into histogram metrics.

    Args:
        metrics: registry receiving the duration histograms.
        enabled: when ``False`` every timer is a shared no-op.
        clock: monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        metrics: MetricsRegistry,
        enabled: bool = True,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.metrics = metrics
        self.enabled = enabled
        self._clock = clock

    def timer(self, name: str, **labels: Any) -> BoundTimer | _NoopTimer:
        """One-shot timed region: ``with profiler.timer("fl.client_train_s"):``."""
        if not self.enabled:
            return _NOOP_TIMER
        return BoundTimer(self.metrics.histogram(name, **labels), self._clock)

    def bind(self, name: str, **labels: Any) -> BoundTimer | _NoopTimer:
        """Pre-resolve a timer for repeated use inside a hot loop.

        Returns the shared no-op when disabled, so call sites need no
        enabled-check of their own.
        """
        return self.timer(name, **labels)

    def observe(self, name: str, duration_s: float, **labels: Any) -> None:
        """Record an externally-measured duration (no clock reads here)."""
        if self.enabled:
            self.metrics.histogram(name, **labels).observe(duration_s)
