"""Standard-format telemetry exports: OpenMetrics text and Chrome traces.

The in-repo telemetry formats (JSONL event logs, metric snapshots) are
self-describing but bespoke.  This module renders the same data in the
two interchange formats the wider tooling ecosystem already speaks:

* :func:`to_openmetrics` — a :class:`MetricsRegistry` as OpenMetrics /
  Prometheus text exposition (``# TYPE`` + sample lines, cumulative
  ``_bucket{le=...}`` histogram series, terminated by ``# EOF``), ready
  for ``promtool``, a Prometheus file-based collector, or any scraper.
* :func:`to_chrome_trace` — a :class:`Tracer` span forest as Chrome
  trace-event JSON (complete ``"X"`` events on one pid/tid timeline),
  loadable in ``chrome://tracing`` and Perfetto's trace viewer.

Both are pure functions of the in-memory telemetry and deliberately
dependency-free: no prometheus_client, no perfetto SDK — the formats are
simple enough that hand-rendering is smaller than a dependency, and the
container image must not grow one.
"""

from __future__ import annotations

import json
import math
import re
from pathlib import Path
from typing import Any

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracing import Span, Tracer

__all__ = [
    "to_openmetrics",
    "write_openmetrics",
    "to_chrome_trace",
    "write_chrome_trace",
]


_INVALID_METRIC_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_LABEL_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def _sanitize_metric_name(name: str) -> str:
    """Dotted internal names → valid Prometheus metric names.

    ``energy.joules`` becomes ``energy_joules``; a leading digit gains a
    ``_`` prefix.  The mapping is stable but not injective — acceptable
    because internal names never differ only in punctuation.
    """
    sanitized = _INVALID_METRIC_CHARS.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized or "_"


def _sanitize_label_name(name: str) -> str:
    sanitized = _INVALID_LABEL_CHARS.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized or "_"


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\n", "\\n").replace('"', '\\"')


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    return repr(float(value))


def _render_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{_sanitize_label_name(k)}="{_escape_label_value(str(v))}"'
        for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def to_openmetrics(registry: MetricsRegistry) -> str:
    """Render a registry as OpenMetrics text exposition.

    Families are emitted in sorted-name order, each with one ``# TYPE``
    line; histogram samples follow the Prometheus convention of
    *cumulative* ``_bucket`` counts with inclusive ``le`` upper bounds
    (matching this registry's inclusive bucket edges), a ``+Inf``
    bucket, and ``_sum``/``_count`` side-cars.  Output ends with
    ``# EOF`` as OpenMetrics requires.
    """
    families: dict[str, list[Any]] = {}
    kinds: dict[str, str] = {}
    for instrument in registry:
        name = _sanitize_metric_name(instrument.name)
        families.setdefault(name, []).append(instrument)
        kind = "gauge" if instrument.kind == "gauge" else instrument.kind
        previous = kinds.setdefault(name, kind)
        if previous != kind:
            raise ValueError(
                f"metric family {name!r} mixes kinds {previous!r} and {kind!r}"
            )
    lines: list[str] = []
    for name in sorted(families):
        kind = kinds[name]
        lines.append(f"# TYPE {name} {kind}")
        for instrument in families[name]:
            labels = dict(instrument.labels)
            if isinstance(instrument, Histogram):
                cumulative = 0
                for bound, count in zip(
                    instrument.buckets, instrument.counts
                ):
                    cumulative += count
                    bucket_labels = {**labels, "le": _format_value(bound)}
                    lines.append(
                        f"{name}_bucket{_render_labels(bucket_labels)} "
                        f"{cumulative}"
                    )
                cumulative += instrument.counts[-1]
                inf_labels = {**labels, "le": "+Inf"}
                lines.append(
                    f"{name}_bucket{_render_labels(inf_labels)} {cumulative}"
                )
                lines.append(
                    f"{name}_sum{_render_labels(labels)} "
                    f"{_format_value(instrument.sum)}"
                )
                lines.append(
                    f"{name}_count{_render_labels(labels)} {instrument.count}"
                )
            else:
                lines.append(
                    f"{name}{_render_labels(labels)} "
                    f"{_format_value(instrument.value)}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write :func:`to_openmetrics` output to ``path`` (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_openmetrics(registry), encoding="utf-8")
    return path


def _span_to_events(
    span: Span,
    pid: int,
    tid: int,
    clock_end_us: float | None,
) -> list[dict[str, Any]]:
    """One span subtree → flat list of Chrome ``"X"`` complete events.

    An unfinished span (worker killed mid-region) is clamped to
    ``clock_end_us`` — the latest finished timestamp in the forest — so
    it still renders instead of being dropped.
    """
    start_us = span.start_s * 1e6
    if span.finished:
        duration_us = span.duration_s * 1e6
    elif clock_end_us is not None:
        duration_us = max(0.0, clock_end_us - start_us)
    else:
        duration_us = 0.0
    event: dict[str, Any] = {
        "name": span.name,
        "ph": "X",
        "ts": start_us,
        "dur": duration_us,
        "pid": pid,
        "tid": tid,
        "cat": "repro",
    }
    if span.attributes:
        event["args"] = {k: _json_safe(v) for k, v in span.attributes.items()}
    events = [event]
    for child in span.children:
        events.extend(_span_to_events(child, pid, tid, clock_end_us))
    return events


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "tolist"):
        return value.tolist()
    return str(value)


def to_chrome_trace(
    tracer: Tracer, process_name: str = "repro"
) -> dict[str, Any]:
    """Render a span forest as a Chrome trace-event document.

    Spans from different source workers (the collector stamps a
    ``worker`` attribute on merged roots) land on separate ``tid``
    tracks, so a parallel campaign's timeline shows the workers side by
    side; unlabelled local spans share track 0.  Timestamps are the
    tracer's own monotonic clock in microseconds.
    """
    tids: dict[Any, int] = {}
    events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    latest_end_us: float | None = None
    for span in tracer.iter_spans():
        if span.finished:
            end_us = span.end_s * 1e6
            if latest_end_us is None or end_us > latest_end_us:
                latest_end_us = end_us
    for root in tracer.roots:
        worker = root.attributes.get("worker", "")
        tid = tids.setdefault(worker, len(tids))
        if worker != "" and tid not in {
            e.get("tid") for e in events if e.get("name") == "thread_name"
        }:
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": tid,
                    "args": {"name": f"worker {worker}"},
                }
            )
        events.extend(_span_to_events(root, 0, tid, latest_end_us))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    tracer: Tracer, path: str | Path, process_name: str = "repro"
) -> Path:
    """Write :func:`to_chrome_trace` as JSON to ``path`` (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    document = to_chrome_trace(tracer, process_name=process_name)
    path.write_text(json.dumps(document, indent=1), encoding="utf-8")
    return path
