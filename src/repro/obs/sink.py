"""Cross-process telemetry: worker spools and the parent-side collector.

Since the two-level parallel runtime (pool engine workers inside
scheduler subprocesses) the telemetry of one campaign is scattered over
many processes, each with its own :class:`~repro.obs.observer.Observer`.
This module is the transport that reunifies them:

* :class:`TelemetrySpool` — a worker-side sink that streams telemetry
  records (events, metric records, span trees, lifecycle markers) to an
  append-only JSONL *spool file*.  Every record is one ``write`` of one
  complete line (progress-critical records also ``flush``), so a worker
  killed mid-unit leaves a readable prefix: the file never needs a
  footer to be parseable.
* :class:`SpoolObserver` — an :class:`Observer` that tees every emitted
  event into a spool as it happens (live, for ``status --follow``) and
  dumps its metrics registry and span forest on :meth:`finalize`.
* :class:`TelemetryCollector` — the parent-side tail-and-merge loop: it
  scans a spool directory, consumes each file's *complete* lines past a
  remembered byte offset (a trailing partial line — the crash signature
  — is left for a later poll or ignored forever), and folds the records
  into one parent observer with ``unit``/``worker`` labels attached.

The spool *context* (:func:`set_spool_context`) is how nested worker
tiers find the spool directory without threading a path through every
constructor: the campaign scheduler worker sets it before executing a
unit, and the pool engine — two layers down — reads it when it forks
its own workers, so even per-chunk engine telemetry lands in the same
directory and carries the same unit label.

Spool record kinds (one JSON object per line)::

    {"kind": "meta",    "unit": ..., "worker": ..., "role": "unit"|"engine"}
    {"kind": "event",   "event": {...ObsEvent.to_dict()...}}
    {"kind": "events",  "events": [{...}, ...]}        # batched bulk events
    {"kind": "metrics", "records": [...MetricsRegistry.to_records()...]}
    {"kind": "spans",   "spans": [...Span.to_dict()...]}
    {"kind": "end",     "status": "ok"|"error", "duration_s": ...}

The ``meta`` line is always first; everything else may appear in any
order and any number of times (metric records are *deltas*: counters
merge by addition, so periodic partial dumps also aggregate correctly).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Callable

from repro.obs.events import ObsEvent, _json_default
from repro.obs.metrics import MetricsRegistry
from repro.obs.observer import Observer
from repro.obs.tracing import Span

__all__ = [
    "TelemetrySpool",
    "SpoolObserver",
    "TelemetryCollector",
    "read_spool_records",
    "read_spool_tail",
    "set_spool_context",
    "get_spool_context",
    "clear_spool_context",
]


# ----------------------------------------------------------------------
# Worker spool context.  Module-level (per-process) so nested worker
# tiers — the pool engine inside a scheduler subprocess — can discover
# the active spool directory and unit label without plumbing either
# through engine constructors that predate campaigns.
# ----------------------------------------------------------------------
_SPOOL_CONTEXT: dict[str, Any] = {}


def set_spool_context(directory: str | Path, unit: str) -> None:
    """Declare the active spool directory and unit label in this process."""
    _SPOOL_CONTEXT["directory"] = str(directory)
    _SPOOL_CONTEXT["unit"] = str(unit)


def get_spool_context() -> tuple[str, str] | None:
    """The ``(directory, unit)`` set by :func:`set_spool_context`, if any."""
    if "directory" not in _SPOOL_CONTEXT:
        return None
    return _SPOOL_CONTEXT["directory"], _SPOOL_CONTEXT["unit"]


def clear_spool_context() -> None:
    """Forget the active spool context (unit finished or failed)."""
    _SPOOL_CONTEXT.clear()


class TelemetrySpool:
    """Append-only JSONL telemetry sink for one worker process.

    Args:
        path: spool file; the parent directory is created, and an
            existing file is truncated (a re-executed unit starts a
            fresh spool — crash-safety is about mid-run kills, not
            cross-run history).
        unit: unit label stamped into the ``meta`` line (and by the
            collector onto every merged record).
        worker: worker label; defaults to this process's pid.
        role: ``"unit"`` for the per-unit observer spool, ``"engine"``
            for nested pool-engine worker spools.  Status rendering
            reads only ``"unit"`` spools; the collector merges both.
    """

    def __init__(
        self,
        path: str | Path,
        unit: str = "",
        worker: int | str | None = None,
        role: str = "unit",
    ) -> None:
        self.path = Path(path)
        self.unit = str(unit)
        self.worker = os.getpid() if worker is None else worker
        self.role = role
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "w", encoding="utf-8")
        self.append(
            "meta", unit=self.unit, worker=self.worker, role=self.role
        )

    @property
    def closed(self) -> bool:
        return self._handle.closed

    def append(self, kind: str, flush: bool = True, **payload: Any) -> None:
        """Write one complete record line; flush it to the OS by default.

        The line is materialised before any byte is written, so a crash
        can truncate at most the *last* line — exactly the prefix
        property the collector relies on.  ``flush=False`` lets a record
        ride the stdio buffer instead of paying a syscall per line: the
        prefix property still holds (the buffer drains in whole-write
        chunks, and the reader defers any partial tail line), a crash
        just loses at most the buffered suffix.  Progress-critical
        records should keep the default.
        """
        if self._handle.closed:
            return
        line = json.dumps({"kind": kind, **payload}, default=_json_default)
        self._handle.write(line + "\n")
        if flush:
            self._handle.flush()

    def record_event(self, event: ObsEvent, flush: bool = True) -> None:
        """Stream one structured event."""
        self.append("event", flush=flush, event=event.to_dict())

    def record_event_batch(
        self, events: list[ObsEvent], flush: bool = False
    ) -> None:
        """Stream many events as one ``events`` record.

        One serialisation + one write for the whole batch — this is the
        cheap path for bulk per-client events, whose per-line cost would
        otherwise dominate the telemetry overhead on small models.
        """
        if not events:
            return
        self.append(
            "events",
            flush=flush,
            events=[event.to_dict() for event in events],
        )

    def record_metrics(self, registry: MetricsRegistry) -> None:
        """Dump the registry as one delta record (counters merge by +)."""
        self.append("metrics", records=registry.to_records())

    def record_spans(self, spans: list[Span]) -> None:
        """Dump a span forest (typically ``tracer.roots``)."""
        self.append("spans", spans=[span.to_dict() for span in spans])

    def finish(self, status: str = "ok", **fields: Any) -> None:
        """Write the terminal record and close the file.  Idempotent."""
        self.append("end", status=status, **fields)
        self.close()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class SpoolObserver(Observer):
    """Observer whose event stream tees live into a :class:`TelemetrySpool`.

    Progress events (``round.*``, ``unit.*`` — what ``status --follow``
    and the ETA read) hit the disk the moment they are emitted, each as
    its own flushed line.  Bulk per-client events buffer in memory and
    drain as one batched ``events`` record at the next progress event
    (or at :meth:`finalize`, or when :attr:`BATCH_LIMIT` accumulate):
    one serialisation and one write per *round* instead of per client,
    which is what keeps full telemetry affordable on IoT-sized models
    where a client's whole training step is microseconds.  Ordering is
    preserved — the pending batch always drains *before* the progress
    event that follows it.  A killed worker loses at most the buffered
    batch; every flushed progress line survives, which is exactly the
    granularity the status/ETA reader needs.  The metrics registry and
    span forest are dumped once, by :meth:`finalize`, because they are
    cumulative state rather than a stream.
    """

    #: Event categories whose loss or staleness would break liveness:
    #: these flush through to the OS immediately.
    LIVE_PREFIXES: tuple[str, ...] = ("round.", "unit.")

    #: Drain the pending batch at this size even without a progress
    #: event, bounding both memory and crash loss.
    BATCH_LIMIT = 256

    def __init__(self, spool: TelemetrySpool, **observer_kwargs: Any) -> None:
        super().__init__(**observer_kwargs)
        self.spool = spool
        self._pending: list[ObsEvent] = []

    def emit(
        self, category: str, sim_time: float | None = None, **fields: Any
    ) -> ObsEvent:
        event = super().emit(category, sim_time=sim_time, **fields)
        if category.startswith(self.LIVE_PREFIXES):
            self._drain()
            self.spool.record_event(event, flush=True)
        else:
            self._pending.append(event)
            if len(self._pending) >= self.BATCH_LIMIT:
                self._drain()
        return event

    def _drain(self) -> None:
        if self._pending:
            self.spool.record_event_batch(self._pending)
            self._pending = []

    def finalize(self, status: str = "ok", **fields: Any) -> None:
        """Dump metrics + spans, then seal the spool with an ``end`` record."""
        if self.spool.closed:
            return
        self._drain()
        self.spool.record_metrics(self.metrics)
        if self.tracer.roots:
            self.spool.record_spans(self.tracer.roots)
        self.spool.finish(status=status, **fields)


def read_spool_records(
    path: str | Path, offset: int = 0
) -> tuple[list[dict], int]:
    """Parse the complete records of a spool file past ``offset`` bytes.

    Returns ``(records, new_offset)``.  Only bytes up to the last
    newline are consumed — a trailing partial line (in-progress write or
    crash truncation) is never parsed and never advances the offset, so
    a later call picks it up if it completes.  A line that is complete
    but not valid JSON (disk corruption) is skipped, not fatal: a spool
    is best-effort evidence, and one bad line must not discard the rest.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        handle.seek(offset)
        data = handle.read()
    cut = data.rfind(b"\n")
    if cut < 0:
        return [], offset
    records = []
    for line in data[: cut + 1].splitlines():
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and "kind" in record:
            records.append(record)
    return records, offset + cut + 1


def read_spool_tail(path: str | Path, limit: int = 20) -> list[dict]:
    """The last ``limit`` records of a spool file, best-effort.

    Failure records embed this as forensic context — what the unit was
    doing when it died.  A missing, empty, or unreadable spool yields an
    empty list rather than an error: evidence collection must never turn
    a unit failure into a campaign failure.
    """
    try:
        records, _ = read_spool_records(path)
    except OSError:
        return []
    return records[-limit:] if limit > 0 else []


class TelemetryCollector:
    """Tails a spool directory and merges records into a parent observer.

    Every merged record is labelled with its spool's ``unit`` and
    ``worker`` identity: events gain ``unit``/``worker`` fields, metric
    instruments gain ``unit``/``worker`` labels (so counters from
    different workers stay distinct yet sum to the campaign total), and
    span roots gain ``unit``/``worker`` attributes.  Polling is
    incremental and idempotent — each file's consumed byte offset is
    remembered, so calling :meth:`poll` from a scheduler loop costs one
    ``stat`` per spool when nothing is new.

    Args:
        directory: the spool directory (need not exist yet).
        observer: parent observer receiving the merged telemetry; when
            ``None`` the collector still parses and counts records
            (useful for status displays that only want progress).
    """

    def __init__(
        self,
        directory: str | Path,
        observer: Observer | None = None,
        on_record: Callable[[dict, dict], None] | None = None,
    ) -> None:
        self.directory = Path(directory)
        self._observer = observer
        self._on_record = on_record
        self._offsets: dict[Path, int] = {}
        self._meta: dict[Path, dict] = {}
        self.records_merged = 0

    def poll(self) -> int:
        """Consume every new complete record; returns how many merged."""
        if not self.directory.is_dir():
            return 0
        merged = 0
        for path in sorted(self.directory.glob("*.jsonl")):
            merged += self._poll_file(path)
        self.records_merged += merged
        return merged

    def _poll_file(self, path: Path) -> int:
        offset = self._offsets.get(path, 0)
        try:
            if path.stat().st_size <= offset:
                return 0
            records, new_offset = read_spool_records(path, offset)
        except OSError:
            return 0
        self._offsets[path] = new_offset
        meta = self._meta.setdefault(path, {})
        for record in records:
            if record["kind"] == "meta":
                meta.update(record)
            else:
                self._merge(record, meta)
        return len(records)

    def _merge(self, record: dict, meta: dict) -> None:
        if self._on_record is not None:
            self._on_record(record, meta)
        observer = self._observer
        if observer is None:
            return
        unit = meta.get("unit", "?")
        worker = meta.get("worker", "?")
        kind = record["kind"]
        if kind == "event":
            self._merge_event(observer, record["event"], unit, worker)
        elif kind == "events":
            for event_doc in record.get("events", ()):
                self._merge_event(observer, event_doc, unit, worker)
        elif kind == "metrics":
            from repro.obs.aggregate import merge_metric_records

            merge_metric_records(
                observer.metrics,
                record.get("records", ()),
                unit=unit,
                worker=worker,
            )
        elif kind == "spans":
            for span_doc in record.get("spans", ()):
                try:
                    span = Span.from_dict(span_doc)
                except ValueError:
                    continue
                span.set_attribute("unit", unit)
                span.set_attribute("worker", worker)
                observer.tracer.roots.append(span)
        elif kind == "end":
            observer.emit(
                "spool.end",
                unit=unit,
                worker=worker,
                status=record.get("status", "ok"),
            )

    @staticmethod
    def _merge_event(
        observer: Observer, event_doc: dict, unit: str, worker: Any
    ) -> None:
        try:
            event = ObsEvent.from_dict(event_doc)
        except ValueError:
            return
        fields = dict(event.fields)
        fields.setdefault("unit", unit)
        fields.setdefault("worker", worker)
        # The merged event keeps its category and sim time; its position
        # on the *worker's* clock survives as src_wall_s (the parent's
        # own emit stamps parent wall time).
        fields.setdefault("src_wall_s", event.wall_time_s)
        observer.emit(event.category, sim_time=event.sim_time_s, **fields)
