"""Structured event log: the observability substrate's source of truth.

Every instrumented component appends :class:`ObsEvent` records to an
:class:`EventLog`.  An event carries a dotted *category*
(``round.start``, ``client.train``, ``sim.event``, ``acs.iteration``),
a monotonic wall-clock timestamp relative to the log's creation, an
optional *simulation* timestamp (the two clocks deliberately coexist:
a 280-round FedAvg run takes seconds of wall time but hours of simulated
testbed time), and a free-form field mapping.

The log is append-only and order-preserving; :meth:`EventLog.to_jsonl` /
:meth:`EventLog.from_jsonl` round-trip it losslessly so a run's telemetry
can be dumped next to its results and inspected offline.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator

__all__ = ["ObsEvent", "EventLog"]


def _json_default(value: Any) -> Any:
    """Coerce numpy scalars/arrays and other common types for JSON."""
    if hasattr(value, "tolist"):  # numpy array or scalar
        return value.tolist()
    if hasattr(value, "item"):  # other scalar wrappers
        return value.item()
    if isinstance(value, (set, frozenset, tuple)):
        return list(value)
    raise TypeError(f"unserialisable event field of type {type(value).__name__}")


@dataclass(frozen=True)
class ObsEvent:
    """One structured telemetry record.

    Attributes:
        sequence: position in the emitting log (monotonically increasing).
        category: dotted event kind, e.g. ``"round.start"``.
        wall_time_s: monotonic seconds since the log was created.
        sim_time_s: simulation clock at emission, or ``None`` outside a
            simulation context.
        fields: free-form JSON-serialisable payload.
    """

    sequence: int
    category: str
    wall_time_s: float
    sim_time_s: float | None = None
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict form used by the JSONL export."""
        return {
            "seq": self.sequence,
            "category": self.category,
            "wall_s": self.wall_time_s,
            "sim_s": self.sim_time_s,
            "fields": dict(self.fields),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ObsEvent":
        """Inverse of :meth:`to_dict`; raises ``ValueError`` when malformed."""
        try:
            return cls(
                sequence=int(data["seq"]),
                category=str(data["category"]),
                wall_time_s=float(data["wall_s"]),
                sim_time_s=(
                    None if data.get("sim_s") is None else float(data["sim_s"])
                ),
                fields=dict(data.get("fields", {})),
            )
        except (KeyError, TypeError) as error:
            raise ValueError(f"malformed event record {data!r}: {error}") from None


class EventLog:
    """Append-only ordered store of :class:`ObsEvent` records."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._events: list[ObsEvent] = []
        self._clock = clock
        self._epoch = clock()
        self._next_sequence = 0

    def emit(
        self, category: str, sim_time: float | None = None, **fields: Any
    ) -> ObsEvent:
        """Append one event and return it.

        ``sim_time`` is the simulation clock (if any); all remaining
        keyword arguments become the event's field payload.
        """
        if not category:
            raise ValueError("event category must be a non-empty string")
        event = ObsEvent(
            sequence=self._next_sequence,
            category=category,
            wall_time_s=self._clock() - self._epoch,
            sim_time_s=None if sim_time is None else float(sim_time),
            fields=fields,
        )
        self._events.append(event)
        self._next_sequence += 1
        return event

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[ObsEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> ObsEvent:
        return self._events[index]

    @property
    def events(self) -> tuple[ObsEvent, ...]:
        return tuple(self._events)

    def categories(self) -> dict[str, int]:
        """Event count per category."""
        counts: dict[str, int] = {}
        for event in self._events:
            counts[event.category] = counts.get(event.category, 0) + 1
        return counts

    def filter(self, category: str) -> list[ObsEvent]:
        """Events whose category equals ``category`` or lives under it.

        ``filter("client")`` matches ``client.train`` and
        ``client.upload`` but not ``clients.x``.
        """
        prefix = category + "."
        return [
            e
            for e in self._events
            if e.category == category or e.category.startswith(prefix)
        ]

    # ------------------------------------------------------------------
    # JSONL round-trip.
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """Serialise every event as one JSON object per line."""
        return "\n".join(
            json.dumps(event.to_dict(), default=_json_default)
            for event in self._events
        )

    @classmethod
    def from_jsonl(cls, text: str) -> "EventLog":
        """Rebuild a log from :meth:`to_jsonl` output (order preserved)."""
        log = cls()
        for line_number, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"invalid JSON on line {line_number}: {error}"
                ) from None
            log._events.append(ObsEvent.from_dict(data))
        if log._events:
            log._next_sequence = max(e.sequence for e in log._events) + 1
        return log

    def save_jsonl(self, path: str | Path) -> None:
        """Write the log to ``path`` (one event per line)."""
        text = self.to_jsonl()
        Path(path).write_text(text + "\n" if text else "")

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "EventLog":
        """Read a log previously written by :meth:`save_jsonl`."""
        return cls.from_jsonl(Path(path).read_text())
