"""Observability: structured events, metrics, tracing, and profiling.

The paper's argument is built on *measurement* — POWER-Z traces at 1 kHz
feeding the ``(c0, c1)`` fit, per-round energy and timing behind every
figure.  This package gives the reproduction the same visibility at
runtime:

* :mod:`repro.obs.events` — an append-only structured event log
  (``round.start``, ``client.train``, ``sim.event``, ...) with both
  monotonic wall time and simulation time, exportable as JSONL;
* :mod:`repro.obs.metrics` — process-local counters, gauges, and
  fixed-bucket histograms (``fl.gradient_steps``,
  ``energy.joules{phase=train}``, ...) with a ``snapshot()`` dict and a
  text renderer;
* :mod:`repro.obs.tracing` — a lightweight span API producing a
  parent/child tree with durations;
* :mod:`repro.obs.profiling` — opt-in hot-path timers that aggregate
  ``perf_counter`` deltas into histogram metrics;
* :mod:`repro.obs.observer` — the :class:`Observer` facade bundling all
  four, plus the :data:`NULL_OBSERVER` no-op backend;
* :mod:`repro.obs.sink` — cross-process transport: worker-side
  :class:`TelemetrySpool` files (append-only JSONL, crash-safe readable
  prefix) and the parent-side :class:`TelemetryCollector` that tails
  and merges them;
* :mod:`repro.obs.aggregate` — :class:`CampaignTelemetry`, the reducer
  folding per-unit metric snapshots into one campaign-wide registry
  with reconciliation checks;
* :mod:`repro.obs.export` — standard-format exports: OpenMetrics /
  Prometheus text and Chrome trace-event JSON.

Every instrumented component (:class:`~repro.fl.training.FederatedTrainer`,
:class:`~repro.sim.engine.Simulator`, :class:`~repro.core.acs.ACSSolver`,
:class:`~repro.hardware.prototype.HardwarePrototype`, ...) takes an
optional ``observer`` and behaves identically — at negligible overhead —
when none is attached.
"""

from repro.obs.aggregate import (
    CampaignTelemetry,
    UnitTelemetry,
    merge_metric_records,
    records_from_snapshot,
)
from repro.obs.events import EventLog, ObsEvent
from repro.obs.export import (
    to_chrome_trace,
    to_openmetrics,
    write_chrome_trace,
    write_openmetrics,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_DURATION_BUCKETS_S,
    parse_metric_name,
)
from repro.obs.observer import NULL_OBSERVER, NullObserver, Observer, active_or_none
from repro.obs.profiling import HotPathProfiler
from repro.obs.sink import (
    SpoolObserver,
    TelemetryCollector,
    TelemetrySpool,
    clear_spool_context,
    get_spool_context,
    read_spool_records,
    read_spool_tail,
    set_spool_context,
)
from repro.obs.tracing import NullTracer, Span, Tracer

__all__ = [
    "CampaignTelemetry",
    "Counter",
    "DEFAULT_DURATION_BUCKETS_S",
    "EventLog",
    "Gauge",
    "Histogram",
    "HotPathProfiler",
    "MetricsRegistry",
    "NULL_OBSERVER",
    "NullObserver",
    "NullTracer",
    "ObsEvent",
    "Observer",
    "Span",
    "SpoolObserver",
    "TelemetryCollector",
    "TelemetrySpool",
    "Tracer",
    "UnitTelemetry",
    "active_or_none",
    "clear_spool_context",
    "get_spool_context",
    "merge_metric_records",
    "parse_metric_name",
    "read_spool_records",
    "read_spool_tail",
    "records_from_snapshot",
    "set_spool_context",
    "to_chrome_trace",
    "to_openmetrics",
    "write_chrome_trace",
    "write_openmetrics",
]
