"""Edge-server client: local model training (step (2) of the FEI loop).

Each edge server holds a local dataset uploaded by its IoT devices,
receives the global model from the coordinator, performs ``E`` epochs of
local SGD (full-batch by default, as in the paper), and returns the
updated parameter vector for uploading.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset
from repro.fl.model import LogisticRegressionConfig, LogisticRegressionModel
from repro.fl.sgd import SGDConfig

__all__ = ["LocalUpdate", "EdgeServerClient"]


@dataclass(frozen=True)
class LocalUpdate:
    """Result of one local-training invocation at an edge server.

    Attributes:
        client_id: identifier of the edge server that produced the update.
        parameters: flat updated model parameter vector (what gets
            uploaded to the coordinator, step (3) of the FEI loop).
        n_samples: size of the local dataset used (``n_k``), needed for
            sample-weighted aggregation variants.
        epochs: number of local epochs ``E`` that were run.
        gradient_steps: total number of SGD steps taken (``E`` times the
            number of mini-batches per epoch).
        final_local_loss: local loss observed at the end of training, for
            diagnostics.  On the full-batch path this is the loss the
            final gradient step descended (i.e. evaluated at the
            penultimate parameters), reusing the forward pass that step
            already computed instead of running an extra one.
    """

    client_id: int
    parameters: np.ndarray
    n_samples: int
    epochs: int
    gradient_steps: int
    final_local_loss: float


class EdgeServerClient:
    """One edge server participating in federated training.

    The client is stateless between rounds apart from its dataset: at
    every round it re-initialises its model from the received global
    parameters, exactly as FedAvg prescribes.
    """

    def __init__(
        self,
        client_id: int,
        dataset: Dataset,
        model_config: LogisticRegressionConfig,
        rng: np.random.Generator | None = None,
    ) -> None:
        if len(dataset) == 0:
            raise ValueError(f"client {client_id} received an empty dataset")
        if dataset.n_features != model_config.n_features:
            raise ValueError(
                f"dataset has {dataset.n_features} features but the model "
                f"expects {model_config.n_features}"
            )
        self.client_id = client_id
        self.dataset = dataset
        self.model_config = model_config
        self._rng = rng or np.random.default_rng(client_id)
        # Any config exposing the model-factory protocol works here —
        # LogisticRegressionConfig (the paper's model) or MLPConfig (the
        # non-convex extension).
        self._model = model_config.build()

    @classmethod
    def from_population(
        cls,
        state,
        client_id: int,
        rng: np.random.Generator | None = None,
    ) -> "EdgeServerClient":
        """Materialise one per-object client out of population stacks.

        The inverse of :meth:`repro.fl.population.PopulationState.
        from_clients`, for the interop/debug path: pull a single
        client's rows back out of the ``(G, n, d)`` group stacks as a
        float64 :class:`Dataset` view so it can run the reference
        sequential code path (spot-checking a population round, or
        serving one client to a component that still wants objects).
        """
        n = int(state.n_samples[client_id])
        group = state.groups[n]
        row = int(state.rows_of(np.asarray([client_id], dtype=np.int64))[0])
        dataset = Dataset(
            np.asarray(group.features[row], dtype=float),
            group.labels[row],
            state.model_config.n_classes,
        )
        return cls(client_id, dataset, state.model_config, rng=rng)

    @property
    def n_samples(self) -> int:
        """Local dataset size ``n_k``."""
        return len(self.dataset)

    def local_loss(self, parameters: np.ndarray) -> float:
        """Evaluate the local loss function ``F_k`` (eq. (1)) at ``parameters``."""
        self._model.set_parameters(parameters)
        return self._model.loss(self.dataset.features, self.dataset.labels)

    def local_gradient(self, parameters: np.ndarray) -> np.ndarray:
        """Full-batch gradient of ``F_k`` at ``parameters`` (flat vector)."""
        self._model.set_parameters(parameters)
        return self._model.gradient_flat(self.dataset.features, self.dataset.labels)

    def train(
        self,
        global_parameters: np.ndarray,
        epochs: int,
        learning_rate: float,
        sgd: SGDConfig | None = None,
        proximal_mu: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> LocalUpdate:
        """Run ``epochs`` rounds of local SGD starting from the global model.

        Args:
            global_parameters: flat parameter vector received from the
                coordinator (step "Model Downloading").
            epochs: the paper's ``E`` — local epochs to run.
            learning_rate: rate for this global round (already decayed by
                the coordinator's schedule).
            sgd: optional optimizer config; only ``batch_size`` is read
                here (``None`` = full batch, the paper's setting).
            proximal_mu: FedProx proximal strength.  When positive, each
                step also descends ``mu/2 ||w - w_global||^2``, anchoring
                local training to the global model — the standard
                client-drift mitigation for non-iid data (extension; the
                paper uses plain FedAvg, ``mu = 0``).
            rng: optional randomness source for mini-batch shuffling.
                The execution engines pass a per-(client, round) named
                substream here so sequential and pooled execution consume
                identical shuffles; when ``None`` the client's own
                stateful generator is used.  Unused on the full-batch
                path.

        Returns:
            The :class:`LocalUpdate` to be uploaded.
        """
        if epochs < 1:
            raise ValueError(f"epochs must be >= 1; got {epochs}")
        if learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive; got {learning_rate}")
        if proximal_mu < 0:
            raise ValueError(f"proximal_mu must be non-negative; got {proximal_mu}")
        batch_size = sgd.batch_size if sgd is not None else None
        global_parameters = np.asarray(global_parameters, dtype=float)
        steps = 0

        if batch_size is None:
            # Full-batch gradient descent (the paper's setting).  Each
            # epoch shares one forward pass between the loss and the
            # gradient, and parameter vectors flow out-of-place through
            # the ``copy=False`` view fast path.
            features, labels = self.dataset.features, self.dataset.labels
            params = global_parameters
            last_loss = 0.0
            for _ in range(epochs):
                self._model.set_parameters(params, copy=False)
                last_loss, gradient = self._model.forward_backward(features, labels)
                if proximal_mu:
                    gradient = gradient + proximal_mu * (params - global_parameters)
                params = params - learning_rate * gradient
                steps += 1
            self._model.set_parameters(params, copy=False)
            final_loss = last_loss
        else:
            self._model.set_parameters(global_parameters)
            batch_rng = rng if rng is not None else self._rng

            def step(features: np.ndarray, labels: np.ndarray) -> None:
                if proximal_mu == 0.0:
                    self._model.sgd_step(features, labels, learning_rate)
                    return
                params = self._model.get_parameters()
                gradient = self._model.gradient_flat(features, labels)
                gradient = gradient + proximal_mu * (params - global_parameters)
                self._model.set_parameters(
                    params - learning_rate * gradient, copy=False
                )

            for _ in range(epochs):
                for feats, labels in self.dataset.batches(batch_size, batch_rng):
                    step(feats, labels)
                    steps += 1
            final_loss = self._model.loss(
                self.dataset.features, self.dataset.labels
            )
        return LocalUpdate(
            client_id=self.client_id,
            parameters=self._model.get_parameters(),
            n_samples=self.n_samples,
            epochs=epochs,
            gradient_steps=steps,
            final_local_loss=final_loss,
        )
