"""Federated-learning substrate: FedAvg over edge servers (paper §III)."""

from repro.fl.async_training import (
    AsyncConfig,
    AsyncFederatedTrainer,
    AsyncResult,
    AsyncUpdateRecord,
)
from repro.fl.client import EdgeServerClient, LocalUpdate
from repro.fl.compression import (
    CompressedUpdate,
    Compressor,
    ErrorFeedback,
    NoCompression,
    TopKCompressor,
    UniformQuantizer,
)
from repro.fl.metrics import RoundRecord, TrainingHistory
from repro.fl.history_io import (
    history_from_json,
    history_to_json,
    load_history_json,
    save_history_json,
)
from repro.fl.mlp import MLPConfig, MLPModel
from repro.fl.model import (
    LogisticRegressionConfig,
    LogisticRegressionModel,
    softmax,
)
from repro.fl.partition import (
    partition_by_shards,
    partition_dirichlet,
    partition_iid,
)
from repro.fl.population import (
    AggregationTree,
    GridResult,
    GridUnit,
    PopulationGroup,
    PopulationState,
    fullbatch_gd_stack,
    train_cohort,
    train_unit_grid,
)
from repro.fl.sampling import (
    ClientSampler,
    FixedSampler,
    FloydSampler,
    RoundRobinSampler,
    UniformSampler,
)
from repro.fl.server import (
    Coordinator,
    NonFiniteUpdateError,
    aggregate_mean,
    aggregate_weighted,
)
from repro.fl.sgd import LearningRateSchedule, SGDConfig
from repro.fl.training import FederatedConfig, FederatedTrainer, build_clients

__all__ = [
    "AsyncConfig",
    "AsyncFederatedTrainer",
    "AsyncResult",
    "AsyncUpdateRecord",
    "EdgeServerClient",
    "LocalUpdate",
    "CompressedUpdate",
    "Compressor",
    "ErrorFeedback",
    "NoCompression",
    "TopKCompressor",
    "UniformQuantizer",
    "RoundRecord",
    "TrainingHistory",
    "history_from_json",
    "history_to_json",
    "load_history_json",
    "save_history_json",
    "MLPConfig",
    "MLPModel",
    "LogisticRegressionConfig",
    "LogisticRegressionModel",
    "softmax",
    "partition_by_shards",
    "partition_dirichlet",
    "partition_iid",
    "AggregationTree",
    "GridResult",
    "GridUnit",
    "PopulationGroup",
    "PopulationState",
    "fullbatch_gd_stack",
    "train_cohort",
    "train_unit_grid",
    "ClientSampler",
    "FixedSampler",
    "FloydSampler",
    "RoundRobinSampler",
    "UniformSampler",
    "Coordinator",
    "NonFiniteUpdateError",
    "aggregate_mean",
    "aggregate_weighted",
    "LearningRateSchedule",
    "SGDConfig",
    "FederatedConfig",
    "FederatedTrainer",
    "build_clients",
]
