"""Training history: the measurements behind Fig. 4 of the paper.

The history records, per global round, the global training loss, the
test accuracy, and the cumulative number of local gradient epochs
(``E x t``).  Fig. 4's analysis queries it for "rounds needed to reach a
target accuracy" and "total local gradients computed at that point",
which is how the paper demonstrates the interior-optimal ``E``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RoundRecord", "TrainingHistory"]


@dataclass(frozen=True)
class RoundRecord:
    """Snapshot of the global model after one coordination round.

    Attributes:
        round_index: 0-based index ``t`` of the completed round.
        train_loss: global loss ``F(omega_{t+1})`` on the full training set.
        test_accuracy: accuracy of the global model on the held-out test set.
        participants: ids of the edge servers selected this round (they
            all performed local training and consumed energy).
        local_epochs: ``E`` used this round.
        learning_rate: rate the participants used this round.
        aggregated: ids whose updates entered the aggregation.  Equals
            ``participants`` in plain FedAvg; a strict subset under
            over-selection (stragglers trained but were not waited for)
            or dropout (their upload was lost).
        degraded: the round was skipped gracefully — too few survivor
            updates reached the coordinator (quorum not met, or every
            upload lost), so the previous global model was carried
            forward unchanged.  ``aggregated`` is empty for a degraded
            round (the empty-to-``participants`` backfill applies only
            to healthy rounds).
    """

    round_index: int
    train_loss: float
    test_accuracy: float
    participants: tuple[int, ...]
    local_epochs: int
    learning_rate: float
    aggregated: tuple[int, ...] = ()
    degraded: bool = False

    def __post_init__(self) -> None:
        if not self.aggregated and not self.degraded:
            object.__setattr__(self, "aggregated", self.participants)
        if self.degraded and self.aggregated:
            raise ValueError("a degraded round cannot have aggregated ids")
        if not set(self.aggregated) <= set(self.participants):
            raise ValueError("aggregated ids must be a subset of participants")

    def to_dict(self) -> dict:
        """Plain-type dict form — the one serialisation shape shared by
        :mod:`repro.fl.history_io` and the telemetry event log."""
        return {
            "round_index": int(self.round_index),
            "train_loss": float(self.train_loss),
            "test_accuracy": float(self.test_accuracy),
            "participants": [int(p) for p in self.participants],
            "local_epochs": int(self.local_epochs),
            "learning_rate": float(self.learning_rate),
            "aggregated": [int(p) for p in self.aggregated],
            "degraded": bool(self.degraded),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RoundRecord":
        """Inverse of :meth:`to_dict`; raises ``ValueError`` when malformed."""
        try:
            return cls(
                round_index=int(data["round_index"]),
                train_loss=float(data["train_loss"]),
                test_accuracy=float(data["test_accuracy"]),
                participants=tuple(int(p) for p in data["participants"]),
                local_epochs=int(data["local_epochs"]),
                learning_rate=float(data["learning_rate"]),
                aggregated=tuple(int(p) for p in data.get("aggregated", [])),
                degraded=bool(data.get("degraded", False)),
            )
        except (KeyError, TypeError) as error:
            raise ValueError(f"malformed record {data!r}: {error}") from None


class TrainingHistory:
    """Accumulates :class:`RoundRecord` objects and answers Fig.-4 queries."""

    def __init__(self) -> None:
        self._records: list[RoundRecord] = []

    def append(self, record: RoundRecord) -> None:
        """Record the outcome of one global round (must arrive in order)."""
        if self._records and record.round_index != self._records[-1].round_index + 1:
            raise ValueError(
                f"round {record.round_index} arrived after "
                f"round {self._records[-1].round_index}"
            )
        if not self._records and record.round_index != 0:
            raise ValueError(
                f"first record must have round_index 0; got {record.round_index}"
            )
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index: int) -> RoundRecord:
        return self._records[index]

    @property
    def records(self) -> tuple[RoundRecord, ...]:
        return tuple(self._records)

    @property
    def losses(self) -> np.ndarray:
        """Per-round global training losses (Fig. 4(a)/(c) y-axis)."""
        return np.array([r.train_loss for r in self._records])

    @property
    def accuracies(self) -> np.ndarray:
        """Per-round test accuracies (Fig. 4(b)/(d) y-axis)."""
        return np.array([r.test_accuracy for r in self._records])

    def final_loss(self) -> float:
        """Loss after the last completed round."""
        if not self._records:
            raise ValueError("history is empty")
        return self._records[-1].train_loss

    def final_accuracy(self) -> float:
        """Accuracy after the last completed round."""
        if not self._records:
            raise ValueError("history is empty")
        return self._records[-1].test_accuracy

    def best_accuracy(self) -> float:
        """Highest accuracy observed over all rounds."""
        if not self._records:
            raise ValueError("history is empty")
        return float(self.accuracies.max())

    def rounds_to_accuracy(self, target: float) -> int | None:
        """Smallest ``T`` such that test accuracy first reaches ``target``.

        Returns the 1-based round count (the paper's ``T``), or ``None``
        if the target was never reached.
        """
        hits = np.flatnonzero(self.accuracies >= target)
        return int(hits[0]) + 1 if hits.size else None

    def degraded_round_count(self) -> int:
        """Number of degraded rounds (quorum missed, model carried over)."""
        return sum(1 for r in self._records if r.degraded)

    def rounds_to_loss(self, target: float) -> int | None:
        """Smallest ``T`` such that train loss first drops to ``target``."""
        hits = np.flatnonzero(self.losses <= target)
        return int(hits[0]) + 1 if hits.size else None

    def to_records(self) -> list[dict]:
        """All rounds as plain dicts (see :meth:`RoundRecord.to_dict`)."""
        return [record.to_dict() for record in self._records]

    @classmethod
    def from_records(cls, records: list[dict]) -> "TrainingHistory":
        """Rebuild a history from :meth:`to_records` output."""
        history = cls()
        for entry in records:
            history.append(RoundRecord.from_dict(entry))
        return history

    def summary(self) -> dict:
        """Headline aggregates as a plain dict (metrics-snapshot shape).

        Returns ``{"rounds": 0}`` with ``None`` statistics for an empty
        history instead of raising, so telemetry dumps of aborted runs
        stay well-formed.
        """
        if not self._records:
            return {
                "rounds": 0,
                "final_loss": None,
                "final_accuracy": None,
                "best_accuracy": None,
                "total_local_epochs": 0,
                "total_selections": 0,
                "degraded_rounds": 0,
            }
        return {
            "rounds": len(self._records),
            "final_loss": self.final_loss(),
            "final_accuracy": self.final_accuracy(),
            "best_accuracy": self.best_accuracy(),
            "total_local_epochs": int(
                sum(r.local_epochs for r in self._records)
            ),
            "total_selections": int(
                sum(len(r.participants) for r in self._records)
            ),
            "degraded_rounds": self.degraded_round_count(),
        }

    def local_gradient_rounds_to_accuracy(self, target: float) -> int | None:
        """Total local gradient epochs (``sum of E over rounds``) at target.

        This is the quantity the paper calls "rounds of local gradients"
        in the Fixed-K analysis of Fig. 4: for E = 20 it reports T = 280
        giving 5 600, for E = 40 it reports T = 90 giving 3 600, etc.
        """
        rounds = self.rounds_to_accuracy(target)
        if rounds is None:
            return None
        return int(sum(r.local_epochs for r in self._records[:rounds]))
