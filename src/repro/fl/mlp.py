"""A one-hidden-layer MLP — the "beyond logistic regression" extension.

The paper trains multinomial logistic regression; its future-work
direction is richer models.  This module provides a numpy MLP with the
same duck-typed interface the FL substrate uses (flat parameter vector,
loss, gradient, SGD step), so every component — clients, coordinator,
trainer, prototype, message sizing — works unchanged with a non-convex
model.

Note the theory caveat: Proposition 1 assumes convex local losses; with
an MLP the bound is heuristic.  The extension benchmarks use the MLP to
probe how far the energy-planning pipeline degrades off-assumption.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fl.model import softmax

__all__ = ["MLPConfig", "MLPModel"]


@dataclass(frozen=True)
class MLPConfig:
    """Architecture of the one-hidden-layer network.

    Attributes:
        n_features: input dimensionality.
        n_hidden: hidden-layer width.
        n_classes: output dimensionality.
        l2: L2 regularisation on the weight matrices (not biases).
        init_seed: seed of the deterministic He initialisation.  All
            parties calling :meth:`build` receive identical initial
            parameters, which FedAvg requires of ``omega_0``.
    """

    n_features: int = 784
    n_hidden: int = 64
    n_classes: int = 10
    l2: float = 0.0
    init_seed: int = 0

    def __post_init__(self) -> None:
        if self.n_features < 1 or self.n_hidden < 1:
            raise ValueError(
                f"n_features and n_hidden must be positive; got "
                f"{self.n_features}, {self.n_hidden}"
            )
        if self.n_classes < 2:
            raise ValueError(f"n_classes must be >= 2; got {self.n_classes}")
        if self.l2 < 0:
            raise ValueError(f"l2 must be non-negative; got {self.l2}")

    @property
    def n_parameters(self) -> int:
        """Total scalar parameters: two weight matrices + two bias vectors."""
        return (
            self.n_features * self.n_hidden
            + self.n_hidden
            + self.n_hidden * self.n_classes
            + self.n_classes
        )

    def parameter_bytes(self, dtype_bytes: int = 4) -> int:
        """Serialised update size (for the communication substrate)."""
        return self.n_parameters * dtype_bytes

    def build(self) -> "MLPModel":
        """Construct a model with the deterministic shared initialisation."""
        return MLPModel(self)


class MLPModel:
    """``softmax(W2 . relu(W1 x + b1) + b2)`` with cross-entropy loss."""

    def __init__(self, config: MLPConfig) -> None:
        self.config = config
        rng = np.random.default_rng(config.init_seed)
        # He initialisation for the ReLU layer; small normal for the head.
        self.w1 = rng.normal(
            0.0, np.sqrt(2.0 / config.n_features), (config.n_features, config.n_hidden)
        )
        self.b1 = np.zeros(config.n_hidden)
        self.w2 = rng.normal(
            0.0, np.sqrt(1.0 / config.n_hidden), (config.n_hidden, config.n_classes)
        )
        self.b2 = np.zeros(config.n_classes)

    # ------------------------------------------------------------------
    # Flat parameter-vector interface.
    # ------------------------------------------------------------------
    def get_parameters(self) -> np.ndarray:
        return np.concatenate(
            [self.w1.ravel(), self.b1, self.w2.ravel(), self.b2]
        )

    def set_parameters(self, flat: np.ndarray, copy: bool = True) -> None:
        """Load parameters from a flat vector.

        ``copy=False`` installs views into ``flat`` (the hot-loop fast
        path, same contract as
        :meth:`repro.fl.model.LogisticRegressionModel.set_parameters`):
        the caller must not mutate ``flat``, and the model only rebinds
        its parameter arrays.
        """
        flat = np.asarray(flat, dtype=float)
        if flat.shape != (self.config.n_parameters,):
            raise ValueError(
                f"expected {self.config.n_parameters} parameters; got {flat.shape}"
            )
        c = self.config
        cursor = 0
        pieces = []
        for shape in (
            (c.n_features, c.n_hidden),
            (c.n_hidden,),
            (c.n_hidden, c.n_classes),
            (c.n_classes,),
        ):
            size = int(np.prod(shape))
            piece = flat[cursor : cursor + size].reshape(shape)
            pieces.append(piece.copy() if copy else piece)
            cursor += size
        self.w1, self.b1, self.w2, self.b2 = pieces

    def clone(self) -> "MLPModel":
        other = MLPModel(self.config)
        other.set_parameters(self.get_parameters())
        return other

    # ------------------------------------------------------------------
    # Forward / loss / gradient.
    # ------------------------------------------------------------------
    def _forward(self, features: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        hidden = np.maximum(features @ self.w1 + self.b1, 0.0)
        logits = hidden @ self.w2 + self.b2
        return hidden, logits

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        _, logits = self._forward(features)
        return softmax(logits)

    def predict(self, features: np.ndarray) -> np.ndarray:
        _, logits = self._forward(features)
        return np.argmax(logits, axis=-1)

    def loss(self, features: np.ndarray, labels: np.ndarray) -> float:
        probs = self.predict_proba(features)
        picked = probs[np.arange(features.shape[0]), labels]
        value = float(-np.mean(np.log(np.maximum(picked, 1e-12))))
        if self.config.l2:
            value += 0.5 * self.config.l2 * float(
                np.sum(self.w1**2) + np.sum(self.w2**2)
            )
        return value

    def gradient_flat(self, features: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Backprop gradient as a flat vector aligned with the parameters."""
        n = features.shape[0]
        hidden, logits = self._forward(features)
        delta_out = softmax(logits)
        delta_out[np.arange(n), labels] -= 1.0
        delta_out /= n
        grad_w2 = hidden.T @ delta_out
        grad_b2 = delta_out.sum(axis=0)
        delta_hidden = (delta_out @ self.w2.T) * (hidden > 0)
        grad_w1 = features.T @ delta_hidden
        grad_b1 = delta_hidden.sum(axis=0)
        if self.config.l2:
            grad_w1 += self.config.l2 * self.w1
            grad_w2 += self.config.l2 * self.w2
        return np.concatenate(
            [grad_w1.ravel(), grad_b1, grad_w2.ravel(), grad_b2]
        )

    def forward_backward(
        self, features: np.ndarray, labels: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Loss and flat gradient sharing one forward pass.

        Same contract as
        :meth:`repro.fl.model.LogisticRegressionModel.forward_backward`:
        both values are evaluated at the current parameters.
        """
        n = features.shape[0]
        hidden, logits = self._forward(features)
        probs = softmax(logits)
        picked = probs[np.arange(n), labels]
        loss = float(-np.mean(np.log(np.maximum(picked, 1e-12))))
        if self.config.l2:
            loss += 0.5 * self.config.l2 * float(
                np.sum(self.w1**2) + np.sum(self.w2**2)
            )
        delta_out = probs
        delta_out[np.arange(n), labels] -= 1.0
        delta_out /= n
        grad_w2 = hidden.T @ delta_out
        grad_b2 = delta_out.sum(axis=0)
        delta_hidden = (delta_out @ self.w2.T) * (hidden > 0)
        grad_w1 = features.T @ delta_hidden
        grad_b1 = delta_hidden.sum(axis=0)
        if self.config.l2:
            grad_w1 += self.config.l2 * self.w1
            grad_w2 += self.config.l2 * self.w2
        gradient = np.concatenate(
            [grad_w1.ravel(), grad_b1, grad_w2.ravel(), grad_b2]
        )
        return loss, gradient

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        return float(np.mean(self.predict(features) == labels))

    def sgd_step(
        self, features: np.ndarray, labels: np.ndarray, learning_rate: float
    ) -> None:
        gradient = self.gradient_flat(features, labels)
        self.set_parameters(
            self.get_parameters() - learning_rate * gradient, copy=False
        )
