"""Client-sampling strategies for the coordinator.

The paper selects a uniformly random subset ``K_t`` of ``K`` edge servers
in each global round (step (2) of §III-A).  Alternatives are provided for
the scheduling ablations: round-robin (deterministic fair rotation) and a
fixed subset (always the same servers, the degenerate policy the random
sampler is compared against).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

__all__ = [
    "ClientSampler",
    "UniformSampler",
    "RoundRobinSampler",
    "FixedSampler",
]


class ClientSampler(ABC):
    """Strategy interface: choose which edge servers join round ``t``."""

    def __init__(self, n_clients: int, k: int) -> None:
        if n_clients < 1:
            raise ValueError(f"n_clients must be positive; got {n_clients}")
        if not 1 <= k <= n_clients:
            raise ValueError(f"k must be in [1, {n_clients}]; got {k}")
        self.n_clients = n_clients
        self.k = k

    @abstractmethod
    def select(self, round_index: int) -> np.ndarray:
        """Return the sorted ids of the ``k`` clients for ``round_index``."""


class UniformSampler(ClientSampler):
    """Sample ``k`` distinct clients uniformly at random each round."""

    def __init__(self, n_clients: int, k: int, rng: np.random.Generator) -> None:
        super().__init__(n_clients, k)
        self._rng = rng

    def select(self, round_index: int) -> np.ndarray:
        chosen = self._rng.choice(self.n_clients, size=self.k, replace=False)
        return np.sort(chosen)


class RoundRobinSampler(ClientSampler):
    """Rotate deterministically through clients, ``k`` at a time.

    Guarantees every client participates once every
    ``ceil(n_clients / k)`` rounds — the fairest schedule, useful as a
    variance-free baseline in convergence studies.
    """

    def select(self, round_index: int) -> np.ndarray:
        if round_index < 0:
            raise ValueError(f"round_index must be non-negative; got {round_index}")
        start = (round_index * self.k) % self.n_clients
        ids = (start + np.arange(self.k)) % self.n_clients
        return np.sort(ids)


class FixedSampler(ClientSampler):
    """Always select the same subset of clients."""

    def __init__(self, n_clients: int, client_ids: Sequence[int]) -> None:
        ids = np.unique(np.asarray(client_ids, dtype=np.int64))
        if ids.size != len(client_ids):
            raise ValueError("client_ids contains duplicates")
        if ids.size == 0:
            raise ValueError("client_ids must be non-empty")
        if ids.min() < 0 or ids.max() >= n_clients:
            raise ValueError(
                f"client_ids must lie in [0, {n_clients}); got {list(client_ids)}"
            )
        super().__init__(n_clients, ids.size)
        self._ids = ids

    def select(self, round_index: int) -> np.ndarray:
        return self._ids.copy()
