"""Client-sampling strategies for the coordinator.

The paper selects a uniformly random subset ``K_t`` of ``K`` edge servers
in each global round (step (2) of §III-A).  Alternatives are provided for
the scheduling ablations: round-robin (deterministic fair rotation) and a
fixed subset (always the same servers, the degenerate policy the random
sampler is compared against).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

__all__ = [
    "ClientSampler",
    "UniformSampler",
    "RoundRobinSampler",
    "FixedSampler",
    "FloydSampler",
]


class ClientSampler(ABC):
    """Strategy interface: choose which edge servers join round ``t``."""

    def __init__(self, n_clients: int, k: int) -> None:
        if n_clients < 1:
            raise ValueError(f"n_clients must be positive; got {n_clients}")
        if not 1 <= k <= n_clients:
            raise ValueError(f"k must be in [1, {n_clients}]; got {k}")
        self.n_clients = n_clients
        self.k = k

    @abstractmethod
    def select(self, round_index: int) -> np.ndarray:
        """Return the sorted ids of the ``k`` clients for ``round_index``."""


class UniformSampler(ClientSampler):
    """Sample ``k`` distinct clients uniformly at random each round."""

    def __init__(self, n_clients: int, k: int, rng: np.random.Generator) -> None:
        super().__init__(n_clients, k)
        self._rng = rng

    def select(self, round_index: int) -> np.ndarray:
        chosen = self._rng.choice(self.n_clients, size=self.k, replace=False)
        return np.sort(chosen)


class FloydSampler(ClientSampler):
    """Uniform ``k``-subset in O(k) memory via Floyd's algorithm.

    :class:`UniformSampler` delegates to ``Generator.choice``, whose
    no-replacement path allocates an O(N) permutation — fine for the
    paper's 20 servers, wasteful when the population engine samples a
    10^5-cohort out of 10^6 clients every round.  Floyd's algorithm
    touches only ``k`` draws and a ``k``-sized set, so sampling cost
    scales with the cohort, not the population.

    Statelessly keyed by ``(seed, round)``: every round draws from its
    own derived generator, so selection for round ``t`` is reproducible
    in isolation (no dependence on which rounds ran before) — the
    contract checkpoint/resume at population scale needs.  The draw
    *sequence* therefore differs from :class:`UniformSampler`; the
    marginal distribution (uniform over ``k``-subsets) is the same.
    """

    def __init__(self, n_clients: int, k: int, seed: int = 0) -> None:
        super().__init__(n_clients, k)
        self._seed = seed

    def select(self, round_index: int) -> np.ndarray:
        if round_index < 0:
            raise ValueError(f"round_index must be non-negative; got {round_index}")
        rng = np.random.default_rng((self._seed, 0x0F1D, round_index))
        chosen: set[int] = set()
        # Floyd: for j in [N-k, N), pick t uniform in [0, j]; take t
        # unless already taken, else take j.  Uniform over k-subsets.
        for j in range(self.n_clients - self.k, self.n_clients):
            t = int(rng.integers(0, j + 1))
            chosen.add(t if t not in chosen else j)
        return np.sort(np.fromiter(chosen, dtype=np.int64, count=self.k))


class RoundRobinSampler(ClientSampler):
    """Rotate deterministically through clients, ``k`` at a time.

    Guarantees every client participates once every
    ``ceil(n_clients / k)`` rounds — the fairest schedule, useful as a
    variance-free baseline in convergence studies.
    """

    def select(self, round_index: int) -> np.ndarray:
        if round_index < 0:
            raise ValueError(f"round_index must be non-negative; got {round_index}")
        start = (round_index * self.k) % self.n_clients
        ids = (start + np.arange(self.k)) % self.n_clients
        return np.sort(ids)


class FixedSampler(ClientSampler):
    """Always select the same subset of clients."""

    def __init__(self, n_clients: int, client_ids: Sequence[int]) -> None:
        ids = np.unique(np.asarray(client_ids, dtype=np.int64))
        if ids.size != len(client_ids):
            raise ValueError("client_ids contains duplicates")
        if ids.size == 0:
            raise ValueError("client_ids must be non-empty")
        if ids.min() < 0 or ids.max() >= n_clients:
            raise ValueError(
                f"client_ids must lie in [0, {n_clients}); got {list(client_ids)}"
            )
        super().__init__(n_clients, ids.size)
        self._ids = ids

    def select(self, round_index: int) -> np.ndarray:
        return self._ids.copy()
