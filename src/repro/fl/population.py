"""Struct-of-arrays population state and stacked-cohort training.

The per-object ``EdgeServerClient`` path tops out at a few thousand
simulated clients: a million tiny ``(n_k, d)`` arrays plus a model and a
client object each is death by allocator, and every round pays Python
dispatch per participant.  This module stores an entire client
population as a handful of stacked tensors instead:

* **Group stacks** — clients sharing one local dataset size ``n`` live
  in a single ``(G, n, d)`` feature tensor and ``(G, n)`` label matrix
  (:class:`PopulationGroup`).  The iid partition produces at most two
  sizes, so a million-client population is two contiguous allocations,
  not a million.
* **Scalar vectors** — per-client scalars (``n_k``, battery budget,
  last local loss) are plain ``(N,)`` vectors on
  :class:`PopulationState`, so policy code can mask/aggregate them with
  array ops instead of object traversal.
* **One shared kernel** — :func:`fullbatch_gd_stack` is the exact
  full-batch gradient-descent loop of the batched engine (same
  operation order, same in-place ops), factored out so the batched
  engine, the population engine, and the stacked-unit grid trainer all
  run the identical arithmetic.  With float64 inputs its results are
  bit-identical to ``BatchedEngine`` and agree with the sequential
  client path to ``atol=1e-10``.
* **Stacked units** — :func:`train_unit_grid` goes one level further
  and stacks *campaign units* (K/E/seed combinations over one shared
  dataset) into the same kernel: every unit's round-``r`` cohort
  becomes extra lanes of one ``(G_total, n, d)`` stack, so a whole grid
  trains in a handful of matmuls per round.  Per-unit results are
  bit-identical to running the batched engine unit by unit, because a
  stacked matmul is a per-slice gemm and aggregation reduces each
  unit's lanes separately, in participant order.
* **Hierarchical aggregation** — :class:`AggregationTree` folds a
  round's updates through ``fog`` tier nodes before the cloud combines
  the tier partials (Al-Abiad et al., arXiv:2107.03520): the cloud's
  fan-in becomes ``min(tiers, K)`` instead of ``K``, which is what
  keeps aggregation cost sub-linear in the population size.  The
  counts-weighted fold equals the flat unweighted mean mathematically;
  floating-point summation order differs, so equality holds to
  ``~1e-12``, not bit-for-bit (the tree is therefore opt-in).

The module is deliberately import-light (client/model only) so the
engine layer can build on it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.fl.client import EdgeServerClient, LocalUpdate
from repro.fl.model import LogisticRegressionConfig, _sigmoid

if TYPE_CHECKING:
    from repro.data.dataset import Dataset
    from repro.fl.sgd import SGDConfig

__all__ = [
    "AggregationTree",
    "GridResult",
    "GridUnit",
    "PopulationGroup",
    "PopulationState",
    "fullbatch_gd_stack",
    "train_cohort",
    "train_unit_grid",
]


def _even_split_sizes(total: int, parts: int) -> list[int]:
    """Sizes of at most ``parts`` contiguous, near-even slices of ``total``."""
    parts = max(1, min(parts, total))
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def fullbatch_gd_stack(
    features: np.ndarray,
    labels: np.ndarray,
    weights_global: np.ndarray,
    bias_global: np.ndarray,
    *,
    epochs: int,
    learning_rate: float | np.ndarray,
    activation: str = "softmax",
    l2: float = 0.0,
    proximal_mu: float = 0.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized full-batch GD over a stack of independent lanes.

    This is the batched engine's training loop, verbatim — extracted so
    every vectorized path in the repo shares one arithmetic.  Each lane
    ``g`` of ``features (G, n, d)`` / ``labels (G, n)`` descends
    independently from its anchor model for ``epochs`` steps.

    ``weights_global``/``bias_global`` may be a single ``(d, C)`` /
    ``(C,)`` model (broadcast to every lane, the batched-engine case) or
    per-lane ``(G, d, C)`` / ``(G, C)`` anchors (the stacked-unit case,
    where lanes belong to different units).  Broadcasting does not
    change the per-element arithmetic, so both shapes produce identical
    lane results.  ``learning_rate`` may likewise be a scalar or a
    per-lane ``(G,)`` vector.

    Computation runs in the dtype of ``features`` (float64 in the
    equivalence-tested default; float32 on the opt-in fast path).

    Returns ``(weights (G, d, C), bias (G, C), losses (G,))`` where the
    loss is the one the final step descended, matching
    :meth:`EdgeServerClient.train`.
    """
    n_group, n = labels.shape
    d = features.shape[2]
    n_classes = bias_global.shape[-1]
    rows = np.arange(n)
    group_index = np.arange(n_group)[:, None]

    lr = learning_rate
    if isinstance(lr, np.ndarray) and lr.ndim == 1:
        lr_w: float | np.ndarray = lr[:, None, None]
        lr_b: float | np.ndarray = lr[:, None]
    else:
        lr_w = lr_b = lr

    # Start every lane from broadcast *views* of its anchor; each epoch
    # rebinds out-of-place, never writing through.
    weights = np.broadcast_to(weights_global, (n_group, d, n_classes))
    bias = np.broadcast_to(bias_global, (n_group, n_classes))
    losses = np.zeros(n_group, dtype=features.dtype)
    features_t = features.transpose(0, 2, 1)

    for _ in range(epochs):
        logits = features @ weights
        logits += bias[:, None, :]
        if activation == "softmax":
            shifted = logits - logits.max(axis=-1, keepdims=True)
            exp = np.exp(shifted, out=shifted)
            probs = np.divide(exp, exp.sum(axis=-1, keepdims=True), out=exp)
            picked = probs[group_index, rows, labels]
        else:
            probs = _sigmoid(logits)
            total = probs.sum(axis=-1, keepdims=True)
            picked = (probs / np.maximum(total, 1e-12))[
                group_index, rows, labels
            ]
        losses = -np.mean(np.log(np.maximum(picked, 1e-12)), axis=1)
        if l2:
            losses = losses + 0.5 * l2 * np.sum(weights**2, axis=(1, 2))
        probs[group_index, rows, labels] -= 1.0
        grad_w = features_t @ probs
        grad_w /= n
        grad_b = probs.sum(axis=1)
        grad_b /= n
        if l2:
            grad_w += l2 * weights
        if proximal_mu:
            grad_w += proximal_mu * (weights - weights_global)
            grad_b += proximal_mu * (bias - bias_global)
        # In-place scale then subtract: same values as
        # ``weights - lr * grad`` with half the large temporaries.
        grad_w *= lr_w
        grad_b *= lr_b
        weights = weights - grad_w
        bias = bias - grad_b

    return np.asarray(weights), np.asarray(bias), losses


@dataclass(frozen=True)
class PopulationGroup:
    """All clients sharing one local dataset size, as stacked arrays."""

    client_ids: np.ndarray  # (G,) int64, ascending
    features: np.ndarray  # (G, n, d), population dtype
    labels: np.ndarray  # (G, n) int64

    @property
    def n_clients(self) -> int:
        return int(self.client_ids.shape[0])

    @property
    def n_samples(self) -> int:
        return int(self.labels.shape[1])

    @property
    def nbytes(self) -> int:
        return int(
            self.client_ids.nbytes + self.features.nbytes + self.labels.nbytes
        )


class PopulationState:
    """A whole client population as struct-of-arrays.

    ``groups`` maps local dataset size ``n`` → :class:`PopulationGroup`
    holding every client with that many samples.  Per-client scalars
    live as ``(N,)`` vectors indexed by client id:

    * ``n_samples`` — local dataset size ``n_k``,
    * ``battery_j`` — remaining energy budget (``inf`` = unmetered),
    * ``last_loss`` — most recent final local loss (``nan`` before the
      first round a client participates in).

    Client ids must be exactly ``0..N-1`` (the repo-wide convention:
    client id == partition index).
    """

    def __init__(
        self,
        groups: Mapping[int, PopulationGroup],
        model_config: LogisticRegressionConfig,
        *,
        dtype: np.dtype | str = np.float64,
        battery_j: np.ndarray | None = None,
    ) -> None:
        self.model_config = model_config
        self.dtype = np.dtype(dtype)
        self.groups: dict[int, PopulationGroup] = {
            int(n): group for n, group in sorted(groups.items())
        }
        n_clients = sum(g.n_clients for g in self.groups.values())
        ids_seen = np.concatenate(
            [g.client_ids for g in self.groups.values()]
        ) if self.groups else np.empty(0, dtype=np.int64)
        if n_clients == 0:
            raise ValueError("population must contain at least one client")
        if not np.array_equal(np.sort(ids_seen), np.arange(n_clients)):
            raise ValueError("client ids must be exactly 0..N-1")
        self.n_clients = n_clients
        self.n_samples = np.zeros(n_clients, dtype=np.int64)
        self._row = np.zeros(n_clients, dtype=np.int64)
        for n, group in self.groups.items():
            self.n_samples[group.client_ids] = n
            self._row[group.client_ids] = np.arange(
                group.n_clients, dtype=np.int64
            )
        if battery_j is None:
            self.battery_j = np.full(n_clients, np.inf)
        else:
            self.battery_j = np.asarray(battery_j, dtype=np.float64).copy()
            if self.battery_j.shape != (n_clients,):
                raise ValueError(
                    f"battery_j must have shape ({n_clients},); "
                    f"got {self.battery_j.shape}"
                )
        self.last_loss = np.full(n_clients, np.nan)

    # -- construction --------------------------------------------------

    @classmethod
    def from_datasets(
        cls,
        datasets: Sequence["Dataset"],
        model_config: LogisticRegressionConfig,
        *,
        dtype: np.dtype | str = np.float64,
    ) -> "PopulationState":
        """Stack per-client datasets (index == client id) into groups."""
        dtype = np.dtype(dtype)
        by_size: dict[int, list[int]] = {}
        for client_id, dataset in enumerate(datasets):
            by_size.setdefault(len(dataset.labels), []).append(client_id)
        groups: dict[int, PopulationGroup] = {}
        for n, ids in by_size.items():
            id_array = np.asarray(sorted(ids), dtype=np.int64)
            features = np.stack(
                [np.asarray(datasets[c].features, dtype=dtype) for c in id_array]
            )
            labels = np.stack(
                [np.asarray(datasets[c].labels, dtype=np.int64) for c in id_array]
            )
            groups[n] = PopulationGroup(id_array, features, labels)
        return cls(groups, model_config, dtype=dtype)

    @classmethod
    def from_clients(
        cls,
        clients: Sequence[EdgeServerClient],
        *,
        dtype: np.dtype | str = np.float64,
    ) -> "PopulationState":
        """Adopt an existing per-object client list (ids must be 0..N-1)."""
        if not clients:
            raise ValueError("population must contain at least one client")
        return cls.from_datasets(
            [client.dataset for client in clients],
            clients[0].model_config,
            dtype=dtype,
        )

    @classmethod
    def synthesize(
        cls,
        n_clients: int,
        *,
        n_features: int = 8,
        n_classes: int = 4,
        samples_per_client: int = 4,
        seed: int = 0,
        dtype: np.dtype | str = np.float64,
        l2: float = 0.0,
    ) -> "PopulationState":
        """Generate a uniform synthetic population in one allocation.

        Every client gets the same ``n_k``, so the whole population is a
        single ``(N, n, d)`` group stack — the shape the million-client
        benchmark exercises.
        """
        if n_clients < 1:
            raise ValueError(f"n_clients must be positive; got {n_clients}")
        dtype = np.dtype(dtype)
        rng = np.random.default_rng(seed)
        shape = (n_clients, samples_per_client, n_features)
        if dtype == np.float64 or dtype == np.float32:
            features = rng.standard_normal(shape, dtype=dtype)
        else:
            features = rng.standard_normal(shape).astype(dtype)
        labels = rng.integers(
            0, n_classes, size=(n_clients, samples_per_client), dtype=np.int64
        )
        group = PopulationGroup(
            np.arange(n_clients, dtype=np.int64), features, labels
        )
        config = LogisticRegressionConfig(
            n_features=n_features, n_classes=n_classes, l2=l2
        )
        return cls({samples_per_client: group}, config, dtype=dtype)

    # -- accessors ------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Total bytes held by the group stacks and scalar vectors."""
        stacks = sum(g.nbytes for g in self.groups.values())
        vectors = (
            self.n_samples.nbytes
            + self._row.nbytes
            + self.battery_j.nbytes
            + self.last_loss.nbytes
        )
        return int(stacks + vectors)

    def rows_of(self, client_ids: np.ndarray) -> np.ndarray:
        """Group-stack row index of each client (all in one group)."""
        return self._row[client_ids]

    def drain_battery(self, client_ids: np.ndarray, joules: float) -> None:
        """Charge ``joules`` of training energy to each listed client."""
        self.battery_j[np.asarray(client_ids, dtype=np.int64)] -= joules

    def active_clients(self) -> np.ndarray:
        """Ids of clients whose battery budget is still positive."""
        return np.flatnonzero(self.battery_j > 0.0)


def train_cohort(
    state: PopulationState,
    client_ids: Sequence[int] | np.ndarray,
    global_parameters: np.ndarray,
    *,
    epochs: int,
    learning_rate: float,
    proximal_mu: float = 0.0,
) -> list[LocalUpdate]:
    """Train one round's cohort from the population stacks.

    Cohort members are grouped by ``n_k`` and each group trains as one
    :func:`fullbatch_gd_stack` call in canonical (sorted-id) lane
    order — the same grouping the batched engine uses, so float64
    results are bit-identical to it.  On a float32 population the
    arithmetic runs in float32 and the returned parameter vectors are
    cast back to float64, keeping aggregation dtype-stable.

    Updates are returned in ``client_ids`` order (the trainer's
    participant-order contract).  ``state.last_loss`` is refreshed for
    every trained client.
    """
    ids = np.asarray(client_ids, dtype=np.int64)
    model_config = state.model_config
    d, n_classes = model_config.n_features, model_config.n_classes
    split = d * n_classes
    anchor = np.ascontiguousarray(global_parameters, dtype=np.float64)
    if state.dtype != np.float64:
        anchor = anchor.astype(state.dtype)
    weights_global = anchor[:split].reshape(d, n_classes)
    bias_global = anchor[split:]

    updates: dict[int, LocalUpdate] = {}
    sizes = state.n_samples[ids]
    for n in np.unique(sizes):
        members = np.sort(ids[sizes == n])
        group = state.groups[int(n)]
        rows = state.rows_of(members)
        weights, bias, losses = fullbatch_gd_stack(
            group.features[rows],
            group.labels[rows],
            weights_global,
            bias_global,
            epochs=epochs,
            learning_rate=learning_rate,
            activation=model_config.activation,
            l2=model_config.l2,
            proximal_mu=proximal_mu,
        )
        flat = np.concatenate(
            [weights.reshape(len(members), -1), bias], axis=1
        )
        if flat.dtype != np.float64:
            flat = flat.astype(np.float64)
        losses64 = np.asarray(losses, dtype=np.float64)
        state.last_loss[members] = losses64
        for g, client_id in enumerate(members):
            updates[int(client_id)] = LocalUpdate(
                client_id=int(client_id),
                parameters=flat[g],
                n_samples=int(n),
                epochs=epochs,
                gradient_steps=epochs,
                final_local_loss=float(losses64[g]),
            )
    return [updates[int(client_id)] for client_id in ids]


@dataclass(frozen=True)
class AggregationTree:
    """Fog→cloud aggregation topology (Al-Abiad et al., 2107.03520).

    A round's ``K`` updates are split contiguously over ``fog_nodes``
    tier nodes; each fog folds its slice into one partial mean, and the
    cloud combines the partials weighted by slice size.  The weighted
    fold equals the flat unweighted mean *mathematically*; summation
    order differs, so numerical agreement is ``~1e-12``-tight rather
    than bit-exact — which is why flat aggregation stays the default
    and the tree is an explicit opt-in (`tiers` axis).

    The point is cost: the cloud touches ``min(fog_nodes, K)`` partial
    vectors instead of ``K`` full uploads, so central aggregation work
    and fan-in stay flat as the cohort grows.
    """

    fog_nodes: int

    def __post_init__(self) -> None:
        if self.fog_nodes < 1:
            raise ValueError(
                f"fog_nodes must be positive; got {self.fog_nodes}"
            )

    def fan_in(self, k: int) -> int:
        """Number of partials the cloud combines for a ``k``-cohort."""
        return max(1, min(self.fog_nodes, int(k)))

    def fold(self, stacked: np.ndarray) -> np.ndarray:
        """Fold a ``(K, P)`` update matrix through the tiers to one vector."""
        stacked = np.asarray(stacked)
        k = stacked.shape[0]
        if k == 0:
            raise ValueError("cannot fold an empty update stack")
        sizes = _even_split_sizes(k, self.fog_nodes)
        partials = np.empty((len(sizes), stacked.shape[1]), dtype=stacked.dtype)
        start = 0
        for tier, size in enumerate(sizes):
            partials[tier] = stacked[start : start + size].mean(axis=0)
            start += size
        counts = np.asarray(sizes, dtype=np.float64) / float(k)
        return (partials * counts[:, None]).sum(axis=0)

    def fold_updates(self, updates: Sequence[LocalUpdate]) -> np.ndarray:
        """Tree-fold a round's updates (tiered form of ``aggregate_mean``)."""
        if not updates:
            raise ValueError("cannot aggregate an empty list of updates")
        return self.fold(np.stack([u.parameters for u in updates]))


@dataclass(frozen=True)
class GridUnit:
    """One (K, E, seed) cell of a stacked campaign grid."""

    participants: int
    epochs: int
    seed: int

    def __post_init__(self) -> None:
        if self.participants < 1:
            raise ValueError(
                f"participants must be positive; got {self.participants}"
            )
        if self.epochs < 1:
            raise ValueError(f"epochs must be positive; got {self.epochs}")


@dataclass(frozen=True)
class GridResult:
    """Final state of one grid unit after ``n_rounds`` stacked rounds."""

    unit: GridUnit
    parameters: np.ndarray
    final_mean_loss: float


def train_unit_grid(
    state: PopulationState,
    units: Sequence[GridUnit],
    *,
    n_rounds: int,
    sgd: "SGDConfig",
    proximal_mu: float = 0.0,
    initial_parameters: np.ndarray | None = None,
    tree: AggregationTree | None = None,
) -> list[GridResult]:
    """Train a whole K/E/seed grid over one shared dataset, stacked.

    Each unit replays the trainer's plain-FedAvg semantics exactly: a
    ``default_rng(seed)``-driven uniform cohort per round (sorted, no
    replacement), full-batch local GD for its ``E`` epochs at the
    round's decayed learning rate, and an unweighted mean over its
    ``K`` lanes in participant order.  What's new is *where* the work
    runs: every unit's round-``r`` lanes are appended to shared
    ``(G, n, d)`` stacks (grouped by ``(n_k, E)`` so each kernel call
    has a uniform epoch count) and trained together, with per-lane
    ``(G, d, C)`` anchors carrying each unit's own global model.  A
    stacked matmul is a per-slice gemm, so with the float64 default
    every unit's final parameters are bit-identical to running it alone
    on the batched engine.

    ``tree`` applies fog-tier aggregation to every unit (documented
    ``~1e-12`` tolerance vs flat).
    """
    if not units:
        return []
    if n_rounds < 0:
        raise ValueError(f"n_rounds must be non-negative; got {n_rounds}")
    model_config = state.model_config
    d, n_classes = model_config.n_features, model_config.n_classes
    split = d * n_classes
    n_parameters = model_config.n_parameters
    if initial_parameters is None:
        initial_parameters = model_config.build().get_parameters()
    initial_parameters = np.asarray(initial_parameters, dtype=np.float64)
    if initial_parameters.shape != (n_parameters,):
        raise ValueError(
            f"initial_parameters must have shape ({n_parameters},); "
            f"got {initial_parameters.shape}"
        )
    for unit in units:
        if unit.participants > state.n_clients:
            raise ValueError(
                f"unit {unit} selects {unit.participants} of "
                f"{state.n_clients} clients"
            )

    rngs = [np.random.default_rng(unit.seed) for unit in units]
    params = np.tile(initial_parameters, (len(units), 1))  # (U, P)
    last_losses = [float("nan")] * len(units)

    for round_index in range(n_rounds):
        learning_rate = sgd.rate_at_round(round_index)
        cohorts = [
            np.sort(
                rng.choice(
                    state.n_clients, size=unit.participants, replace=False
                )
            )
            for unit, rng in zip(units, rngs)
        ]
        # Lanes keyed by (n_k, E): uniform samples-per-lane and epochs
        # within a kernel call; lane order is (unit, sorted client) so
        # each unit's lanes keep the batched engine's canonical order.
        lanes: dict[tuple[int, int], list[tuple[int, int, int]]] = {}
        for unit_index, cohort in enumerate(cohorts):
            epochs = units[unit_index].epochs
            for slot, client_id in enumerate(cohort):
                key = (int(state.n_samples[client_id]), epochs)
                lanes.setdefault(key, []).append(
                    (unit_index, int(client_id), slot)
                )

        round_updates = [
            np.empty((unit.participants, n_parameters))
            for unit in units
        ]
        round_losses = [
            np.empty(unit.participants) for unit in units
        ]
        for (n, epochs), lane_list in lanes.items():
            unit_of = np.fromiter(
                (lane[0] for lane in lane_list), dtype=np.int64
            )
            ids = np.fromiter(
                (lane[1] for lane in lane_list), dtype=np.int64
            )
            group = state.groups[n]
            rows = state.rows_of(ids)
            anchors = params[unit_of]  # (G, P) gather, one copy per lane
            if state.dtype != np.float64:
                anchors = anchors.astype(state.dtype)
            weights, bias, losses = fullbatch_gd_stack(
                group.features[rows],
                group.labels[rows],
                anchors[:, :split].reshape(-1, d, n_classes),
                anchors[:, split:],
                epochs=epochs,
                learning_rate=learning_rate,
                activation=model_config.activation,
                l2=model_config.l2,
                proximal_mu=proximal_mu,
            )
            flat = np.concatenate(
                [weights.reshape(len(lane_list), -1), bias], axis=1
            )
            if flat.dtype != np.float64:
                flat = flat.astype(np.float64)
            losses64 = np.asarray(losses, dtype=np.float64)
            for g, (unit_index, _, slot) in enumerate(lane_list):
                round_updates[unit_index][slot] = flat[g]
                round_losses[unit_index][slot] = losses64[g]

        for unit_index in range(len(units)):
            stacked = round_updates[unit_index]
            if tree is None:
                params[unit_index] = stacked.mean(axis=0)
            else:
                params[unit_index] = tree.fold(stacked)
            last_losses[unit_index] = float(
                round_losses[unit_index].mean()
            )

    return [
        GridResult(
            unit=unit,
            parameters=params[unit_index].copy(),
            final_mean_loss=last_losses[unit_index],
        )
        for unit_index, unit in enumerate(units)
    ]
