"""SGD optimizer with per-round learning-rate decay.

The paper's configuration (Table II): SGD with learning rate 0.01 and a
fixed decay rate of 0.99.  The decay is applied once per *global
coordination round*, so every edge server uses the same learning rate
within a round — required for the FedAvg averaging in eq. (2) to be
meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SGDConfig", "LearningRateSchedule"]


@dataclass(frozen=True)
class SGDConfig:
    """Hyper-parameters of the local SGD optimizer.

    Attributes:
        learning_rate: initial learning rate (paper: 0.01).
        decay: multiplicative decay applied per global round (paper: 0.99).
        batch_size: mini-batch size for local SGD; ``None`` means
            full-batch, which is what the paper uses ("full batch size for
            SGD").
    """

    learning_rate: float = 0.01
    decay: float = 0.99
    batch_size: int | None = None

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ValueError(
                f"learning_rate must be positive; got {self.learning_rate}"
            )
        if not 0.0 < self.decay <= 1.0:
            raise ValueError(f"decay must be in (0, 1]; got {self.decay}")
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError(f"batch_size must be positive; got {self.batch_size}")

    def rate_at_round(self, round_index: int) -> float:
        """Learning rate used during global round ``round_index`` (0-based)."""
        if round_index < 0:
            raise ValueError(f"round_index must be non-negative; got {round_index}")
        return self.learning_rate * self.decay**round_index


class LearningRateSchedule:
    """Stateful view of :class:`SGDConfig` that advances once per round."""

    def __init__(self, config: SGDConfig) -> None:
        self._config = config
        self._round = 0

    @property
    def current_rate(self) -> float:
        """Learning rate for the round currently in progress."""
        return self._config.rate_at_round(self._round)

    @property
    def round_index(self) -> int:
        """Index of the round currently in progress (0-based)."""
        return self._round

    def advance(self) -> None:
        """Move to the next global round, applying one decay step."""
        self._round += 1

    def reset(self) -> None:
        """Rewind the schedule to round 0."""
        self._round = 0
