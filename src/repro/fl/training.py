"""The federated training loop (FedAvg over edge servers, §III-A).

This ties the substrate together: a :class:`Coordinator`, a population of
:class:`EdgeServerClient` objects, a :class:`ClientSampler`, and the SGD
schedule.  Each global round executes the paper's four steps:

1. *data collection* happens up-front (datasets are pre-loaded, as in the
   prototype);
2. a subset ``K_t`` of edge servers receives ``omega_t`` and runs ``E``
   local epochs;
3. updated local models are uploaded;
4. the coordinator aggregates them into ``omega_{t+1}``.

The loop optionally injects client *dropouts* (stragglers that fail to
upload), an extension used by the failure-injection tests: FedAvg then
aggregates over the surviving subset.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.data.dataset import Dataset
from repro.fl.client import EdgeServerClient, LocalUpdate
from repro.fl.compression import ErrorFeedback
from repro.fl.metrics import RoundRecord, TrainingHistory
from repro.fl.model import LogisticRegressionConfig
from repro.fl.sampling import ClientSampler, UniformSampler
from repro.fl.server import Coordinator
from repro.fl.sgd import LearningRateSchedule, SGDConfig
from repro.obs.observer import active_or_none

if TYPE_CHECKING:
    from repro.fl.compression import Compressor
    from repro.obs.observer import Observer

__all__ = ["FederatedConfig", "FederatedTrainer", "build_clients"]

# Reusable do-nothing context manager for un-observed hot paths.
_NOOP_CONTEXT = nullcontext()


@dataclass(frozen=True)
class FederatedConfig:
    """Hyper-parameters of one federated training run.

    Attributes:
        n_rounds: maximum number of global coordination rounds ``T``.
        participants_per_round: the paper's ``K``.
        local_epochs: the paper's ``E``.
        sgd: local optimizer configuration.
        target_accuracy: optional early-stopping threshold; when set, the
            loop stops at the first round whose test accuracy reaches it
            (this is how "required T for a target accuracy" is measured).
        dropout_probability: probability that a selected client fails to
            upload its update in a given round (failure injection; the
            paper's prototype has no failures, so the default is 0).
        proximal_mu: FedProx proximal strength forwarded to every client
            (0 = plain FedAvg, the paper's algorithm).
        overselection: extra clients selected per round beyond ``K``
            (production-FL straggler mitigation): ``K + overselection``
            clients train, but only the ``K`` fastest uploads are
            aggregated.  Which clients count as fastest is decided by the
            trainer's ``completion_ranker`` (arrival order by default).
            Over-selected stragglers still burn energy — the trade-off
            the extension benchmarks quantify.
        seed: seed for sampling and dropout randomness.
    """

    n_rounds: int
    participants_per_round: int
    local_epochs: int
    sgd: SGDConfig = field(default_factory=SGDConfig)
    target_accuracy: float | None = None
    dropout_probability: float = 0.0
    proximal_mu: float = 0.0
    overselection: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1; got {self.n_rounds}")
        if self.participants_per_round < 1:
            raise ValueError(
                "participants_per_round must be >= 1; "
                f"got {self.participants_per_round}"
            )
        if self.local_epochs < 1:
            raise ValueError(f"local_epochs must be >= 1; got {self.local_epochs}")
        if not 0.0 <= self.dropout_probability < 1.0:
            raise ValueError(
                f"dropout_probability must be in [0, 1); got {self.dropout_probability}"
            )
        if self.target_accuracy is not None and not 0.0 < self.target_accuracy <= 1.0:
            raise ValueError(
                f"target_accuracy must be in (0, 1]; got {self.target_accuracy}"
            )
        if self.overselection < 0:
            raise ValueError(
                f"overselection must be non-negative; got {self.overselection}"
            )
        if self.proximal_mu < 0:
            raise ValueError(
                f"proximal_mu must be non-negative; got {self.proximal_mu}"
            )


def build_clients(
    partitions: list[Dataset],
    model_config: LogisticRegressionConfig,
    seed: int = 0,
) -> list[EdgeServerClient]:
    """Construct one :class:`EdgeServerClient` per dataset partition."""
    return [
        EdgeServerClient(
            client_id=i,
            dataset=part,
            model_config=model_config,
            rng=np.random.default_rng((seed, i)),
        )
        for i, part in enumerate(partitions)
    ]


class FederatedTrainer:
    """Runs FedAvg rounds and records a :class:`TrainingHistory`."""

    def __init__(
        self,
        clients: list[EdgeServerClient],
        config: FederatedConfig,
        train_eval: Dataset,
        test_eval: Dataset,
        sampler: ClientSampler | None = None,
        coordinator: Coordinator | None = None,
        completion_ranker: Callable[[int, list[int]], list[int]] | None = None,
        update_compressor: Compressor | ErrorFeedback | None = None,
        observer: Observer | None = None,
    ) -> None:
        if not clients:
            raise ValueError("need at least one client")
        selected_per_round = config.participants_per_round + config.overselection
        if selected_per_round > len(clients):
            raise ValueError(
                f"K + overselection = {selected_per_round} exceeds the "
                f"number of edge servers N = {len(clients)}"
            )
        model_config = clients[0].model_config
        for client in clients:
            if client.model_config != model_config:
                raise ValueError("all clients must share the same model config")
        self.clients = clients
        self.config = config
        self.train_eval = train_eval
        self.test_eval = test_eval
        self._rng = np.random.default_rng(config.seed)
        self.sampler = sampler or UniformSampler(
            len(clients), selected_per_round, self._rng
        )
        if self.sampler.k != selected_per_round:
            raise ValueError(
                f"sampler selects {self.sampler.k} clients but the config "
                f"needs K + overselection = {selected_per_round}"
            )
        self._observer = active_or_none(observer)
        self.coordinator = coordinator or Coordinator(
            model_config, observer=observer
        )
        self.completion_ranker = completion_ranker
        self.update_compressor = update_compressor
        self.history = TrainingHistory()
        self._schedule = LearningRateSchedule(config.sgd)
        self.total_gradient_steps = 0
        self.total_uploads = 0
        self.total_upload_bytes = 0

    @property
    def n_clients(self) -> int:
        """Number of edge servers ``N`` in the system."""
        return len(self.clients)

    def _apply_compression(
        self,
        client_id: int,
        update: LocalUpdate,
        global_params: np.ndarray,
    ) -> LocalUpdate:
        """Compress the uploaded *delta* and account for the wire bytes.

        The server reconstructs ``global + decompressed_delta``; without a
        compressor the full-precision parameters are counted at dense
        float32 size.
        """
        if self.update_compressor is None:
            self.total_upload_bytes += update.parameters.size * 4
            return update
        delta = update.parameters - global_params
        if isinstance(self.update_compressor, ErrorFeedback):
            compressed = self.update_compressor.compress(client_id, delta)
        else:
            compressed = self.update_compressor.compress(delta)
        self.total_upload_bytes += compressed.payload_bytes
        return replace(update, parameters=global_params + compressed.dense)

    def run_round(self) -> RoundRecord:
        """Execute one global coordination round and record its outcome."""
        obs = self._observer
        round_started = time.perf_counter()
        round_index = self.coordinator.rounds_completed
        learning_rate = self._schedule.current_rate
        selected = self.sampler.select(round_index)
        global_params = self.coordinator.global_parameters
        if obs is not None:
            obs.emit(
                "round.start",
                round=round_index,
                learning_rate=learning_rate,
                selected=[int(c) for c in selected],
            )
            round_span = obs.tracer.span("round", round=round_index)
            round_span.__enter__()

        try:
            updates: dict[int, LocalUpdate] = {}
            for client_id in selected:
                train_started = time.perf_counter()
                with (
                    obs.profiler.timer("profile.client_train_s")
                    if obs is not None
                    else _NOOP_CONTEXT
                ):
                    update = self.clients[int(client_id)].train(
                        global_params,
                        epochs=self.config.local_epochs,
                        learning_rate=learning_rate,
                        sgd=self.config.sgd,
                        proximal_mu=self.config.proximal_mu,
                    )
                self.total_gradient_steps += update.gradient_steps
                dropped = (
                    self.config.dropout_probability > 0
                    and self._rng.random() < self.config.dropout_probability
                )
                if obs is not None:
                    obs.counter("fl.gradient_steps").inc(update.gradient_steps)
                    obs.emit(
                        "client.train",
                        round=round_index,
                        client=int(client_id),
                        gradient_steps=update.gradient_steps,
                        epochs=update.epochs,
                        final_local_loss=update.final_local_loss,
                        duration_s=time.perf_counter() - train_started,
                        dropped=dropped,
                    )
                if not dropped:
                    bytes_before = self.total_upload_bytes
                    update = self._apply_compression(
                        int(client_id), update, global_params
                    )
                    updates[int(client_id)] = update
                    self.total_uploads += 1
                    if obs is not None:
                        upload_bytes = self.total_upload_bytes - bytes_before
                        obs.counter("fl.uploads").inc()
                        obs.counter("fl.upload_bytes").inc(upload_bytes)
                        obs.emit(
                            "client.upload",
                            round=round_index,
                            client=int(client_id),
                            upload_bytes=upload_bytes,
                        )

            # Over-selection: keep only the first K arrivals among survivors.
            if self.completion_ranker is not None:
                arrival_order = self.completion_ranker(
                    round_index, [int(c) for c in selected]
                )
            else:
                arrival_order = [int(c) for c in selected]
            kept_ids = [
                cid for cid in arrival_order if cid in updates
            ][: self.config.participants_per_round]
            kept_updates = [updates[cid] for cid in kept_ids]

            if kept_updates:
                self.coordinator.aggregate(kept_updates)
            else:
                # Every selected client dropped: the round is wasted and the
                # global model is unchanged, but the round still counts.
                self.coordinator.rounds_completed += 1
            self._schedule.advance()

            model = self.coordinator.global_model()
            record = RoundRecord(
                round_index=round_index,
                train_loss=model.loss(
                    self.train_eval.features, self.train_eval.labels
                ),
                test_accuracy=model.accuracy(
                    self.test_eval.features, self.test_eval.labels
                ),
                participants=tuple(int(c) for c in selected),
                local_epochs=self.config.local_epochs,
                learning_rate=learning_rate,
                aggregated=tuple(sorted(kept_ids)),
            )
            self.history.append(record)
        finally:
            if obs is not None:
                round_span.__exit__(None, None, None)
        if obs is not None:
            duration_s = time.perf_counter() - round_started
            obs.counter("fl.rounds").inc()
            obs.histogram("round.duration_s").observe(duration_s)
            # The round.end payload is exactly RoundRecord.to_dict(), so
            # the event log and history_io share one serialisation shape.
            obs.emit("round.end", duration_s=duration_s, **record.to_dict())
        return record

    def run(self) -> TrainingHistory:
        """Run rounds until ``n_rounds`` or the target accuracy is reached."""
        for _ in range(self.config.n_rounds):
            record = self.run_round()
            if (
                self.config.target_accuracy is not None
                and record.test_accuracy >= self.config.target_accuracy
            ):
                break
        return self.history
