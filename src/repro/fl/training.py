"""The federated training loop (FedAvg over edge servers, §III-A).

This ties the substrate together: a :class:`Coordinator`, a population of
:class:`EdgeServerClient` objects, a :class:`ClientSampler`, and the SGD
schedule.  Each global round executes the paper's four steps:

1. *data collection* happens up-front (datasets are pre-loaded, as in the
   prototype);
2. a subset ``K_t`` of edge servers receives ``omega_t`` and runs ``E``
   local epochs;
3. updated local models are uploaded;
4. the coordinator aggregates them into ``omega_{t+1}``.

The loop optionally injects client *dropouts* (stragglers that fail to
upload), an extension used by the failure-injection tests: FedAvg then
aggregates over the surviving subset.

Beyond the simple Bernoulli dropout, the loop integrates the full fault
subsystem (:mod:`repro.faults`): a :class:`~repro.faults.FaultInjector`
decides crashes, slowdowns, burst loss, battery deaths and corrupted
payloads, while a :class:`~repro.faults.ResilienceConfig` governs how
the round survives them — upload retries with capped backoff, per-upload
timeouts, a round deadline with partial aggregation, a minimum quorum
with graceful degradation (the last good model is carried forward via
:meth:`~repro.fl.server.Coordinator.skip_round`), and deterministic
resampling of crashed clients.  All randomness runs on independent
named streams (sampling, dropout, faults), so enabling one failure mode
never perturbs another's draws.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.data.dataset import Dataset
from repro.faults.models import substream
from repro.faults.policies import (
    ResilienceConfig,
    RoundResilienceReport,
    simulate_upload,
)
from repro.fl.client import EdgeServerClient, LocalUpdate
from repro.fl.compression import ErrorFeedback
from repro.fl.engine import AUTO_BACKEND, BACKENDS, create_engine, resolve_backend
from repro.fl.metrics import RoundRecord, TrainingHistory
from repro.fl.model import LogisticRegressionConfig
from repro.fl.sampling import ClientSampler, UniformSampler
from repro.fl.server import Coordinator
from repro.fl.sgd import LearningRateSchedule, SGDConfig
from repro.net.channel import ChannelConfig, WirelessChannel
from repro.obs.observer import active_or_none
from repro.perf.cache import EvalCache

if TYPE_CHECKING:
    from repro.faults.injector import FaultInjector
    from repro.fl.compression import Compressor
    from repro.obs.observer import Observer

__all__ = ["FederatedConfig", "FederatedTrainer", "build_clients"]


@dataclass(frozen=True)
class FederatedConfig:
    """Hyper-parameters of one federated training run.

    Attributes:
        n_rounds: maximum number of global coordination rounds ``T``.
        participants_per_round: the paper's ``K``.
        local_epochs: the paper's ``E``.
        sgd: local optimizer configuration.
        target_accuracy: optional early-stopping threshold; when set, the
            loop stops at the first round whose test accuracy reaches it
            (this is how "required T for a target accuracy" is measured).
        dropout_probability: probability that a selected client fails to
            upload its update in a given round (failure injection; the
            paper's prototype has no failures, so the default is 0).
        proximal_mu: FedProx proximal strength forwarded to every client
            (0 = plain FedAvg, the paper's algorithm).
        overselection: extra clients selected per round beyond ``K``
            (production-FL straggler mitigation): ``K + overselection``
            clients train, but only the ``K`` fastest uploads are
            aggregated.  Which clients count as fastest is decided by the
            trainer's ``completion_ranker`` (arrival order by default).
            Over-selected stragglers still burn energy — the trade-off
            the extension benchmarks quantify.
        seed: seed for sampling and dropout randomness.
        backend: execution engine for the round's local training —
            ``"sequential"`` (reference), ``"batched"`` (vectorized
            full-batch cohort training; equivalent to sequential to
            ``atol=1e-10``), ``"pool"`` (process pool over
            shared-memory datasets; bit-identical to sequential),
            ``"population"`` (struct-of-arrays cohort training over
            stacked population tensors; bit-identical to batched), or
            ``"auto"`` (resolved per host/workload from the timing-law
            cost model and the measured break-even table).  See
            :mod:`repro.fl.engine`.
        pool_workers: worker-process count for the ``"pool"`` backend
            (ignored by the other backends).
        population_dtype: array dtype for the ``"population"``
            backend's stacks — ``"float64"`` (default, equivalence-
            tested) or ``"float32"`` (half the memory; accuracy delta
            measured in ``BENCH_population.json``).
    """

    n_rounds: int
    participants_per_round: int
    local_epochs: int
    sgd: SGDConfig = field(default_factory=SGDConfig)
    target_accuracy: float | None = None
    dropout_probability: float = 0.0
    proximal_mu: float = 0.0
    overselection: int = 0
    seed: int = 0
    backend: str = "sequential"
    pool_workers: int = 2
    population_dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.n_rounds < 1:
            raise ValueError(f"n_rounds must be >= 1; got {self.n_rounds}")
        if self.participants_per_round < 1:
            raise ValueError(
                "participants_per_round must be >= 1; "
                f"got {self.participants_per_round}"
            )
        if self.local_epochs < 1:
            raise ValueError(f"local_epochs must be >= 1; got {self.local_epochs}")
        if not 0.0 <= self.dropout_probability < 1.0:
            raise ValueError(
                f"dropout_probability must be in [0, 1); got {self.dropout_probability}"
            )
        if self.target_accuracy is not None and not 0.0 < self.target_accuracy <= 1.0:
            raise ValueError(
                f"target_accuracy must be in (0, 1]; got {self.target_accuracy}"
            )
        if self.overselection < 0:
            raise ValueError(
                f"overselection must be non-negative; got {self.overselection}"
            )
        if self.proximal_mu < 0:
            raise ValueError(
                f"proximal_mu must be non-negative; got {self.proximal_mu}"
            )
        if self.backend not in BACKENDS and self.backend != AUTO_BACKEND:
            raise ValueError(
                f"backend must be one of {BACKENDS} or {AUTO_BACKEND!r}; "
                f"got {self.backend!r}"
            )
        if self.pool_workers < 1:
            raise ValueError(
                f"pool_workers must be >= 1; got {self.pool_workers}"
            )
        if self.population_dtype not in ("float64", "float32"):
            raise ValueError(
                "population_dtype must be 'float64' or 'float32'; "
                f"got {self.population_dtype!r}"
            )


def build_clients(
    partitions: list[Dataset],
    model_config: LogisticRegressionConfig,
    seed: int = 0,
) -> list[EdgeServerClient]:
    """Construct one :class:`EdgeServerClient` per dataset partition."""
    return [
        EdgeServerClient(
            client_id=i,
            dataset=part,
            model_config=model_config,
            rng=np.random.default_rng((seed, i)),
        )
        for i, part in enumerate(partitions)
    ]


class FederatedTrainer:
    """Runs FedAvg rounds and records a :class:`TrainingHistory`."""

    def __init__(
        self,
        clients: list[EdgeServerClient],
        config: FederatedConfig,
        train_eval: Dataset,
        test_eval: Dataset,
        sampler: ClientSampler | None = None,
        coordinator: Coordinator | None = None,
        completion_ranker: Callable[[int, list[int]], list[int]] | None = None,
        update_compressor: Compressor | ErrorFeedback | None = None,
        observer: Observer | None = None,
        fault_injector: FaultInjector | None = None,
        resilience: ResilienceConfig | None = None,
        upload_channel: WirelessChannel | None = None,
        client_time_fn: Callable[[int, int], float] | None = None,
    ) -> None:
        if not clients:
            raise ValueError("need at least one client")
        selected_per_round = config.participants_per_round + config.overselection
        if selected_per_round > len(clients):
            raise ValueError(
                f"K + overselection = {selected_per_round} exceeds the "
                f"number of edge servers N = {len(clients)}"
            )
        model_config = clients[0].model_config
        for client in clients:
            if client.model_config != model_config:
                raise ValueError("all clients must share the same model config")
        self.clients = clients
        self.config = config
        self.train_eval = train_eval
        self.test_eval = test_eval
        # Independent named RNG streams: the sampler owns `self._rng`
        # exclusively; dropout and the fault machinery draw from their
        # own streams, so turning either on cannot change which clients
        # later rounds sample (the stream-coupling bug this fixes).
        self._rng = np.random.default_rng(config.seed)
        self._dropout_rng = substream(config.seed, "dropout")
        self._resilience_rng = substream(config.seed, "resilience")
        self.sampler = sampler or UniformSampler(
            len(clients), selected_per_round, self._rng
        )
        if self.sampler.k != selected_per_round:
            raise ValueError(
                f"sampler selects {self.sampler.k} clients but the config "
                f"needs K + overselection = {selected_per_round}"
            )
        if fault_injector is not None and fault_injector.n_clients != len(clients):
            raise ValueError(
                f"fault injector covers {fault_injector.n_clients} clients "
                f"but the trainer has {len(clients)}"
            )
        self._observer = active_or_none(observer)
        self.coordinator = coordinator or Coordinator(
            model_config, observer=observer
        )
        self.completion_ranker = completion_ranker
        self.update_compressor = update_compressor
        self.fault_injector = fault_injector
        self.resilience = resilience
        self.upload_channel = upload_channel or WirelessChannel(ChannelConfig())
        self.client_time_fn = client_time_fn
        self.resilience_log: list[RoundResilienceReport] = []
        self.history = TrainingHistory()
        self._schedule = LearningRateSchedule(config.sgd)
        # "auto" resolves once per trainer so the whole run uses one
        # engine, and the resolved choice is observable for tests/logs.
        self.resolved_backend = resolve_backend(config.backend, clients, config)
        self._engine = create_engine(
            self.resolved_backend, clients, config, self._observer
        )
        self._eval_cache = EvalCache()
        self.total_gradient_steps = 0
        self.total_uploads = 0
        self.total_upload_bytes = 0

    @property
    def last_resilience_report(self) -> RoundResilienceReport | None:
        """The most recent round's fault/retry report (``None`` if none)."""
        return self.resilience_log[-1] if self.resilience_log else None

    @property
    def n_clients(self) -> int:
        """Number of edge servers ``N`` in the system."""
        return len(self.clients)

    def _apply_compression(
        self,
        client_id: int,
        update: LocalUpdate,
        global_params: np.ndarray,
    ) -> LocalUpdate:
        """Compress the uploaded *delta* and account for the wire bytes.

        The server reconstructs ``global + decompressed_delta``; without a
        compressor the full-precision parameters are counted at dense
        float32 size.
        """
        if self.update_compressor is None:
            self.total_upload_bytes += update.parameters.size * 4
            return update
        delta = update.parameters - global_params
        if isinstance(self.update_compressor, ErrorFeedback):
            compressed = self.update_compressor.compress(client_id, delta)
        else:
            compressed = self.update_compressor.compress(delta)
        self.total_upload_bytes += compressed.payload_bytes
        return replace(update, parameters=global_params + compressed.dense)

    def _select_participants(
        self, selected: list[int], round_index: int
    ) -> tuple[list[int], list[int], list[int]]:
        """Apply crash faults to the sampled set, resampling replacements.

        Returns ``(participants, crashed, replacements)``: the clients
        that will actually train this round, the sampled clients that
        were down, and the deterministically resampled substitutes
        (drawn from the trainer's dedicated resilience stream, never the
        sampler's).
        """
        injector = self.fault_injector
        if injector is None:
            return list(selected), [], []
        alive = [c for c in selected if not injector.crashed(c, round_index)]
        crashed = [c for c in selected if c not in alive]
        replacements: list[int] = []
        resample = (
            self.resilience.resample_crashed if self.resilience is not None else True
        )
        if crashed and resample:
            pool = [
                c
                for c in range(self.n_clients)
                if c not in selected and injector.available(c, round_index)
            ]
            n_replace = min(len(crashed), len(pool))
            if n_replace > 0:
                chosen = self._resilience_rng.choice(
                    pool, size=n_replace, replace=False
                )
                replacements = sorted(int(c) for c in chosen)
        return alive + replacements, crashed, replacements

    def _nominal_compute_s(self, client_id: int, round_index: int) -> float:
        """Simulated local-job duration used for round-deadline checks."""
        if self.client_time_fn is not None:
            return float(self.client_time_fn(client_id, round_index))
        nominal = (
            self.resilience.nominal_train_s if self.resilience is not None else 1.0
        )
        return nominal * self.config.local_epochs

    def _simulate_resilient_upload(
        self, client_id: int, round_index: int, upload_bytes: int
    ):
        """Run one upload through the timeout/retry state machine.

        Attempt losses come from the client's Gilbert–Elliott burst
        channel when the fault plan declares one (drawn from that
        client's dedicated stream), else from the upload channel's
        Bernoulli loss; backoff jitter draws from the trainer's
        resilience stream.
        """
        assert self.resilience is not None
        injector = self.fault_injector
        attempt_lost = None
        tally = {"lost": 0}
        if injector is not None:
            loss_model = injector.upload_loss_model(client_id, round_index)
            if loss_model is not None:
                channel_rng = injector.channel_rng(client_id)

                def attempt_lost() -> bool:
                    lost = loss_model.attempt_lost(channel_rng)
                    if lost:
                        tally["lost"] += 1
                    return lost

        outcome = simulate_upload(
            self.upload_channel,
            upload_bytes,
            self.resilience.retry,
            self._resilience_rng,
            timeout_s=self.resilience.upload_timeout_s,
            attempt_lost=attempt_lost,
        )
        if injector is not None and tally["lost"] > 0:
            injector.record_burst_loss(client_id, round_index, tally["lost"])
        return outcome

    def run_round(self) -> RoundRecord:
        """Execute one global coordination round and record its outcome."""
        obs = self._observer
        injector = self.fault_injector
        resilience = self.resilience
        resilient = injector is not None or resilience is not None
        round_started = time.perf_counter()
        round_index = self.coordinator.rounds_completed
        learning_rate = self._schedule.current_rate
        selected = [int(c) for c in self.sampler.select(round_index)]
        participants, crashed, replacements = self._select_participants(
            selected, round_index
        )
        global_params = self.coordinator.global_parameters
        if obs is not None:
            obs.emit(
                "round.start",
                round=round_index,
                learning_rate=learning_rate,
                selected=list(participants),
            )
            round_span = obs.tracer.span("round", round=round_index)
            round_span.__enter__()

        try:
            updates: dict[int, LocalUpdate] = {}
            slowdowns: dict[int, float] = {}
            upload_attempts: dict[int, int] = {}
            backoff_log: dict[int, float] = {}
            failed: list[int] = []
            corrupted_ids: list[int] = []
            late: list[int] = []
            results = self._engine.train_round(
                participants, global_params, round_index, learning_rate
            )
            for client_id, result in zip(participants, results):
                update = result.update
                if obs is not None:
                    obs.profiler.observe(
                        "profile.client_train_s", result.duration_s
                    )
                self.total_gradient_steps += update.gradient_steps
                slowdown = 1.0
                if injector is not None:
                    injector.note_participation(client_id, round_index)
                    slowdown = injector.slowdown(client_id, round_index)
                    if slowdown > 1.0:
                        slowdowns[client_id] = slowdown
                dropped = (
                    self.config.dropout_probability > 0
                    and self._dropout_rng.random() < self.config.dropout_probability
                )
                if obs is not None:
                    obs.counter("fl.gradient_steps").inc(update.gradient_steps)
                    obs.emit(
                        "client.train",
                        round=round_index,
                        client=int(client_id),
                        gradient_steps=update.gradient_steps,
                        epochs=update.epochs,
                        final_local_loss=update.final_local_loss,
                        duration_s=result.duration_s,
                        dropped=dropped,
                    )
                if dropped:
                    continue
                bytes_before = self.total_upload_bytes
                update = self._apply_compression(
                    client_id, update, global_params
                )
                upload_bytes = self.total_upload_bytes - bytes_before
                if injector is not None:
                    corruption = injector.corrupts(client_id, round_index)
                    if corruption is not None:
                        update = replace(
                            update,
                            parameters=injector.corrupt_payload(
                                update.parameters, corruption
                            ),
                        )
                        corrupted_ids.append(client_id)
                if resilience is not None:
                    outcome = self._simulate_resilient_upload(
                        client_id, round_index, upload_bytes
                    )
                    upload_attempts[client_id] = outcome.attempts
                    if outcome.backoff_s > 0:
                        backoff_log[client_id] = outcome.backoff_s
                    if obs is not None and outcome.retries > 0:
                        obs.counter("fl.retries").inc(outcome.retries)
                        obs.emit(
                            "client.upload_retry",
                            round=round_index,
                            client=int(client_id),
                            attempts=outcome.attempts,
                            backoff_s=outcome.backoff_s,
                            delivered=outcome.delivered,
                        )
                    if not outcome.delivered:
                        failed.append(client_id)
                        if obs is not None:
                            obs.counter("fl.failed_uploads").inc()
                            obs.emit(
                                "client.upload_failed",
                                round=round_index,
                                client=int(client_id),
                                attempts=outcome.attempts,
                                timed_out=outcome.timed_out,
                            )
                        continue
                    if resilience.round_deadline_s is not None:
                        arrival_s = (
                            self._nominal_compute_s(client_id, round_index)
                            * slowdown
                            + outcome.total_s
                        )
                        if arrival_s > resilience.round_deadline_s:
                            late.append(client_id)
                            if obs is not None:
                                obs.counter("fl.late_uploads").inc()
                                obs.emit(
                                    "client.late",
                                    round=round_index,
                                    client=int(client_id),
                                    arrival_s=arrival_s,
                                    deadline_s=resilience.round_deadline_s,
                                )
                            continue
                updates[client_id] = update
                self.total_uploads += 1
                if obs is not None:
                    obs.counter("fl.uploads").inc()
                    obs.counter("fl.upload_bytes").inc(upload_bytes)
                    obs.emit(
                        "client.upload",
                        round=round_index,
                        client=int(client_id),
                        upload_bytes=upload_bytes,
                    )

            # Over-selection: keep only the first K arrivals among survivors.
            if self.completion_ranker is not None:
                arrival_order = self.completion_ranker(
                    round_index, list(participants)
                )
            else:
                arrival_order = list(participants)
            kept_ids = [
                cid for cid in arrival_order if cid in updates
            ][: self.config.participants_per_round]
            if resilience is not None and resilience.reject_nonfinite:
                finite_ids = []
                for cid in kept_ids:
                    if np.all(np.isfinite(updates[cid].parameters)):
                        finite_ids.append(cid)
                    elif obs is not None:
                        obs.counter("fl.nonfinite_rejected").inc()
                        obs.emit(
                            "client.reject_nonfinite",
                            round=round_index,
                            client=int(cid),
                        )
                kept_ids = finite_ids
            kept_updates = [updates[cid] for cid in kept_ids]

            quorum = resilience.min_quorum if resilience is not None else 1
            degraded = len(kept_updates) < max(1, quorum)
            if degraded:
                # Graceful degradation: too few survivors — carry the
                # last good model forward and mark the round degraded.
                self.coordinator.skip_round()
                kept_ids = []
                if obs is not None:
                    obs.counter("fl.rounds_degraded").inc()
                    obs.emit(
                        "round.degraded",
                        round=round_index,
                        survivors=len(kept_updates),
                        quorum=quorum,
                    )
            else:
                self.coordinator.aggregate(kept_updates)
            self._schedule.advance()

            # Evaluation is cached on the coordinator's parameter
            # version: a degraded round carries the model forward
            # unchanged, so the previous round's numbers are exact.
            version = self.coordinator.parameters_version
            evaluation = self._eval_cache.lookup(version)
            if evaluation is None:
                model = self.coordinator.global_model(copy=False)
                evaluation = (
                    model.loss(
                        self.train_eval.features, self.train_eval.labels
                    ),
                    model.accuracy(
                        self.test_eval.features, self.test_eval.labels
                    ),
                )
                self._eval_cache.store(version, evaluation)
            elif obs is not None:
                obs.counter("engine.cache_hits", cache="eval").inc()
            train_loss, test_accuracy = evaluation
            record = RoundRecord(
                round_index=round_index,
                train_loss=train_loss,
                test_accuracy=test_accuracy,
                participants=tuple(participants),
                local_epochs=self.config.local_epochs,
                learning_rate=learning_rate,
                aggregated=tuple(sorted(kept_ids)),
                degraded=degraded,
            )
            self.history.append(record)
            if resilient:
                report = RoundResilienceReport(
                    round_index=round_index,
                    selected=tuple(selected),
                    crashed=tuple(crashed),
                    replacements=tuple(replacements),
                    slowdowns=slowdowns,
                    upload_attempts=upload_attempts,
                    backoff_s=backoff_log,
                    failed_uploads=tuple(failed),
                    corrupted=tuple(corrupted_ids),
                    late=tuple(late),
                    degraded=degraded,
                    quorum=quorum,
                    n_aggregated=len(kept_ids),
                )
                self.resilience_log.append(report)
                if obs is not None:
                    obs.emit("round.resilience", **report.to_dict())
        except BaseException:
            # Close the span with the real exception info so the trace
            # records the failure (contextmanager __exit__ re-raises).
            if obs is not None:
                round_span.__exit__(*sys.exc_info())
            raise
        else:
            if obs is not None:
                round_span.__exit__(None, None, None)
        if obs is not None:
            duration_s = time.perf_counter() - round_started
            obs.counter("fl.rounds").inc()
            obs.histogram("round.duration_s").observe(duration_s)
            # The round.end payload is exactly RoundRecord.to_dict(), so
            # the event log and history_io share one serialisation shape.
            obs.emit("round.end", duration_s=duration_s, **record.to_dict())
        return record

    def run(self) -> TrainingHistory:
        """Run rounds until ``n_rounds`` or the target accuracy is reached."""
        for _ in range(self.config.n_rounds):
            record = self.run_round()
            if (
                self.config.target_accuracy is not None
                and record.test_accuracy >= self.config.target_accuracy
            ):
                break
        return self.history

    def close(self) -> None:
        """Release execution-engine resources (worker pools, shared memory).

        Idempotent and a no-op for the in-process backends; required for
        deterministic teardown of the ``"pool"`` backend (a GC finalizer
        covers the case where it is never called).
        """
        self._engine.close()
