"""Update compression: shrinking the model-upload energy ``e_k^U``.

The paper treats the per-upload energy as a constant tied to the model
size.  Compressing the *update* (the difference between the locally
trained and the global parameters) shrinks the upload, directly scaling
``e_k^U`` and therefore the ``B1`` term of the energy objective — an
extension the paper's framework prices naturally.

Implemented schemes:

* :class:`NoCompression` — identity (the paper's setting).
* :class:`TopKCompressor` — keep the ``k`` largest-magnitude entries
  (sparsification); payload is ``k`` (index, value) pairs.
* :class:`UniformQuantizer` — linear quantisation to ``bits`` bits per
  entry with a per-update scale.
* :class:`ErrorFeedback` — a stateful wrapper accumulating the residual
  each round and adding it back before the next compression; the
  standard fix that keeps biased compressors (like top-k) convergent.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = [
    "CompressedUpdate",
    "Compressor",
    "NoCompression",
    "TopKCompressor",
    "UniformQuantizer",
    "ErrorFeedback",
]

# Bytes per float32 / int32 on the wire.
_VALUE_BYTES = 4
_INDEX_BYTES = 4
_HEADER_BYTES = 16  # scheme id, element count, scale, checksum


@dataclass(frozen=True)
class CompressedUpdate:
    """A compressed update plus its wire size.

    Attributes:
        dense: the *reconstructed* dense vector (what the server uses).
        payload_bytes: serialised size of the compressed representation.
    """

    dense: np.ndarray
    payload_bytes: int


class Compressor(ABC):
    """Strategy interface for update compression."""

    @abstractmethod
    def compress(self, update: np.ndarray) -> CompressedUpdate:
        """Compress ``update`` and return its reconstruction + wire size."""

    @abstractmethod
    def compressed_bytes(self, n_parameters: int) -> int:
        """Wire size for an update of ``n_parameters`` entries."""

    def compression_ratio(self, n_parameters: int) -> float:
        """Uncompressed bytes / compressed bytes (>= 1 is a win)."""
        dense_bytes = n_parameters * _VALUE_BYTES
        return dense_bytes / self.compressed_bytes(n_parameters)


class NoCompression(Compressor):
    """Identity compressor: full-precision dense upload."""

    def compress(self, update: np.ndarray) -> CompressedUpdate:
        update = np.asarray(update, dtype=float)
        return CompressedUpdate(
            dense=update.copy(),
            payload_bytes=self.compressed_bytes(update.size),
        )

    def compressed_bytes(self, n_parameters: int) -> int:
        return n_parameters * _VALUE_BYTES + _HEADER_BYTES


class TopKCompressor(Compressor):
    """Keep the ``fraction`` largest-magnitude coordinates.

    Biased (drops mass every round); wrap in :class:`ErrorFeedback` for
    convergence at aggressive sparsity.
    """

    def __init__(self, fraction: float) -> None:
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1]; got {fraction}")
        self.fraction = fraction

    def _k(self, n_parameters: int) -> int:
        return max(1, int(round(self.fraction * n_parameters)))

    def compress(self, update: np.ndarray) -> CompressedUpdate:
        update = np.asarray(update, dtype=float)
        k = self._k(update.size)
        if k >= update.size:
            dense = update.copy()
        else:
            keep = np.argpartition(np.abs(update), -k)[-k:]
            dense = np.zeros_like(update)
            dense[keep] = update[keep]
        return CompressedUpdate(
            dense=dense, payload_bytes=self.compressed_bytes(update.size)
        )

    def compressed_bytes(self, n_parameters: int) -> int:
        k = self._k(n_parameters)
        return k * (_VALUE_BYTES + _INDEX_BYTES) + _HEADER_BYTES


class UniformQuantizer(Compressor):
    """Linear quantisation to ``bits`` bits per coordinate.

    Symmetric around zero with a per-update scale; unbiased up to
    rounding, so it usually works without error feedback.
    """

    def __init__(self, bits: int) -> None:
        if not 1 <= bits <= 16:
            raise ValueError(f"bits must be in [1, 16]; got {bits}")
        self.bits = bits

    def compress(self, update: np.ndarray) -> CompressedUpdate:
        update = np.asarray(update, dtype=float)
        magnitude = float(np.abs(update).max())
        if magnitude == 0.0:
            dense = np.zeros_like(update)
        else:
            levels = 2 ** (self.bits - 1) - 1 or 1
            quantised = np.round(update / magnitude * levels)
            dense = quantised / levels * magnitude
        return CompressedUpdate(
            dense=dense, payload_bytes=self.compressed_bytes(update.size)
        )

    def compressed_bytes(self, n_parameters: int) -> int:
        payload = (n_parameters * self.bits + 7) // 8
        return payload + _HEADER_BYTES


class ErrorFeedback:
    """Stateful per-client error-feedback wrapper.

    Maintains one residual vector per client: the part of the update the
    compressor dropped is carried into the next round, so no gradient
    mass is permanently lost.
    """

    def __init__(self, compressor: Compressor) -> None:
        if isinstance(compressor, ErrorFeedback):
            raise ValueError("cannot nest ErrorFeedback wrappers")
        self.compressor = compressor
        self._residuals: dict[int, np.ndarray] = {}

    def compress(self, client_id: int, update: np.ndarray) -> CompressedUpdate:
        """Compress ``update`` with this client's accumulated residual."""
        update = np.asarray(update, dtype=float)
        residual = self._residuals.get(client_id)
        corrected = update if residual is None else update + residual
        compressed = self.compressor.compress(corrected)
        self._residuals[client_id] = corrected - compressed.dense
        return compressed

    def residual_norm(self, client_id: int) -> float:
        """L2 norm of a client's pending residual (0 if never seen)."""
        residual = self._residuals.get(client_id)
        return 0.0 if residual is None else float(np.linalg.norm(residual))

    def reset(self) -> None:
        """Drop all residual state (e.g. between independent runs)."""
        self._residuals.clear()
