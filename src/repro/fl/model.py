"""Multinomial logistic regression implemented on numpy.

This is the model trained by the paper's prototype (Table II: input
784x1, output 10x1, SGD with learning rate 0.01 and decay 0.99).  The
paper lists "Sigmoid" as the activation; multinomial logistic regression
is conventionally trained with a softmax + cross-entropy head, so softmax
is the default here and an element-wise sigmoid head (with the same
cross-entropy-style loss) is available for strict fidelity.

The model exposes a *flat parameter vector* interface because FedAvg
aggregates models by averaging their parameter vectors (eq. (2) of the
paper), and the communication substrate needs the byte size of one model
update.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["LogisticRegressionConfig", "LogisticRegressionModel", "softmax"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis."""
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


def _sigmoid(logits: np.ndarray) -> np.ndarray:
    """Numerically stable element-wise sigmoid."""
    out = np.empty_like(logits)
    pos = logits >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-logits[pos]))
    exp_l = np.exp(logits[~pos])
    out[~pos] = exp_l / (1.0 + exp_l)
    return out


@dataclass(frozen=True)
class LogisticRegressionConfig:
    """Configuration of the classification head.

    Attributes:
        n_features: input dimensionality (784 for 28x28 images).
        n_classes: output dimensionality (10 digits).
        activation: ``"softmax"`` (standard multinomial logistic
            regression) or ``"sigmoid"`` (one-vs-all head, as printed in
            the paper's Table II).
        l2: optional L2 regularisation strength.  With ``l2 > 0`` the loss
            is strongly convex, matching the mu-convexity assumption of
            Proposition 1.
    """

    n_features: int = 784
    n_classes: int = 10
    activation: str = "softmax"
    l2: float = 0.0

    def __post_init__(self) -> None:
        if self.n_features < 1:
            raise ValueError(f"n_features must be positive; got {self.n_features}")
        if self.n_classes < 2:
            raise ValueError(f"n_classes must be >= 2; got {self.n_classes}")
        if self.activation not in ("softmax", "sigmoid"):
            raise ValueError(
                f"activation must be 'softmax' or 'sigmoid'; got {self.activation!r}"
            )
        if self.l2 < 0:
            raise ValueError(f"l2 must be non-negative; got {self.l2}")

    @property
    def n_parameters(self) -> int:
        """Total number of scalar parameters (weights + biases)."""
        return self.n_features * self.n_classes + self.n_classes

    def parameter_bytes(self, dtype_bytes: int = 4) -> int:
        """Size of one serialised model update in bytes.

        Used by the communication substrate to derive the model
        upload/download energy ``e_k^U``.
        """
        return self.n_parameters * dtype_bytes

    def build(self) -> "LogisticRegressionModel":
        """Construct a model with this architecture.

        The canonical factory used by clients and the coordinator; every
        call returns the same (zero) initialisation, so all parties agree
        on ``omega_0``.
        """
        return LogisticRegressionModel(self)


class LogisticRegressionModel:
    """A linear classifier with gradient, loss, and flat-vector access.

    Parameters are stored as a weight matrix ``W`` of shape
    ``(n_features, n_classes)`` and a bias vector ``b`` of shape
    ``(n_classes,)``.
    """

    def __init__(
        self,
        config: LogisticRegressionConfig | None = None,
        rng: np.random.Generator | None = None,
        init_scale: float = 0.0,
    ) -> None:
        self.config = config or LogisticRegressionConfig()
        if init_scale and rng is None:
            raise ValueError("init_scale > 0 requires an rng")
        if init_scale and rng is not None:
            self.weights = rng.normal(
                0.0, init_scale, size=(self.config.n_features, self.config.n_classes)
            )
            self.bias = rng.normal(0.0, init_scale, size=self.config.n_classes)
        else:
            self.weights = np.zeros((self.config.n_features, self.config.n_classes))
            self.bias = np.zeros(self.config.n_classes)

    # ------------------------------------------------------------------
    # Flat parameter-vector interface (what FedAvg averages and uploads).
    # ------------------------------------------------------------------
    def get_parameters(self) -> np.ndarray:
        """Return a flat copy of all parameters (weights then biases)."""
        return np.concatenate([self.weights.ravel(), self.bias])

    def set_parameters(self, flat: np.ndarray, copy: bool = True) -> None:
        """Load parameters from a flat vector produced by :meth:`get_parameters`.

        ``copy=False`` installs *views* into ``flat`` instead of copying —
        the fast path used by the training and evaluation hot loops, where
        a fresh parameter vector is produced every step anyway.  The
        caller must not mutate ``flat`` afterwards, and the model itself
        only rebinds (never writes through) view-backed parameters.
        """
        flat = np.asarray(flat, dtype=float)
        if flat.shape != (self.config.n_parameters,):
            raise ValueError(
                f"expected a flat vector of length {self.config.n_parameters}; "
                f"got shape {flat.shape}"
            )
        n_w = self.config.n_features * self.config.n_classes
        weights = flat[:n_w].reshape(self.config.n_features, self.config.n_classes)
        bias = flat[n_w:]
        if copy:
            weights = weights.copy()
            bias = bias.copy()
        self.weights = weights
        self.bias = bias

    def clone(self) -> "LogisticRegressionModel":
        """Return a deep copy of this model."""
        other = LogisticRegressionModel(self.config)
        other.weights = self.weights.copy()
        other.bias = self.bias.copy()
        return other

    # ------------------------------------------------------------------
    # Forward / loss / gradient.
    # ------------------------------------------------------------------
    def logits(self, features: np.ndarray) -> np.ndarray:
        """Compute the pre-activation scores for a batch of samples."""
        return features @ self.weights + self.bias

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Per-class probabilities (rows sum to 1 under softmax)."""
        scores = self.logits(features)
        if self.config.activation == "softmax":
            return softmax(scores)
        probs = _sigmoid(scores)
        total = probs.sum(axis=-1, keepdims=True)
        return probs / np.maximum(total, 1e-12)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Hard class predictions (argmax of the logits)."""
        return np.argmax(self.logits(features), axis=-1)

    def loss(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Mean cross-entropy loss over the batch, eq. (1) of the paper."""
        probs = self.predict_proba(features)
        n = features.shape[0]
        picked = probs[np.arange(n), labels]
        data_loss = float(-np.mean(np.log(np.maximum(picked, 1e-12))))
        if self.config.l2:
            data_loss += 0.5 * self.config.l2 * float(np.sum(self.weights**2))
        return data_loss

    def gradient(
        self, features: np.ndarray, labels: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Gradient of :meth:`loss` with respect to ``(weights, bias)``.

        For the softmax head this is the exact cross-entropy gradient
        ``X^T (p - y) / n``; for the sigmoid head we use the same
        expression, which corresponds to a one-vs-all logistic loss and
        keeps training stable.
        """
        n = features.shape[0]
        if self.config.activation == "softmax":
            probs = softmax(self.logits(features))
        else:
            probs = _sigmoid(self.logits(features))
        probs[np.arange(n), labels] -= 1.0
        grad_w = features.T @ probs / n
        grad_b = probs.sum(axis=0) / n
        if self.config.l2:
            grad_w = grad_w + self.config.l2 * self.weights
        return grad_w, grad_b

    def gradient_flat(self, features: np.ndarray, labels: np.ndarray) -> np.ndarray:
        """Gradient as a flat vector aligned with :meth:`get_parameters`."""
        grad_w, grad_b = self.gradient(features, labels)
        return np.concatenate([grad_w.ravel(), grad_b])

    def forward_backward(
        self, features: np.ndarray, labels: np.ndarray
    ) -> tuple[float, np.ndarray]:
        """Loss and flat gradient from one shared forward pass.

        A full-batch gradient step needs the class probabilities anyway;
        computing the loss from the same forward halves the forward-pass
        count of the training hot loop.  Returns ``(loss, gradient)``
        where both are evaluated at the *current* parameters (the loss is
        the one this gradient step descends).
        """
        n = features.shape[0]
        if self.config.activation == "softmax":
            probs = softmax(self.logits(features))
            picked = probs[np.arange(n), labels]
        else:
            probs = _sigmoid(self.logits(features))
            total = probs.sum(axis=-1, keepdims=True)
            picked = (probs / np.maximum(total, 1e-12))[np.arange(n), labels]
        loss = float(-np.mean(np.log(np.maximum(picked, 1e-12))))
        if self.config.l2:
            loss += 0.5 * self.config.l2 * float(np.sum(self.weights**2))
        probs[np.arange(n), labels] -= 1.0
        grad_w = features.T @ probs / n
        grad_b = probs.sum(axis=0) / n
        if self.config.l2:
            grad_w = grad_w + self.config.l2 * self.weights
        return loss, np.concatenate([grad_w.ravel(), grad_b])

    def accuracy(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Fraction of correctly classified samples."""
        return float(np.mean(self.predict(features) == labels))

    def sgd_step(
        self, features: np.ndarray, labels: np.ndarray, learning_rate: float
    ) -> None:
        """Apply one gradient-descent step.

        Rebinds (rather than writes through) the parameter arrays, so a
        model loaded via ``set_parameters(..., copy=False)`` never
        mutates the caller's vector.
        """
        grad_w, grad_b = self.gradient(features, labels)
        self.weights = self.weights - learning_rate * grad_w
        self.bias = self.bias - learning_rate * grad_b
