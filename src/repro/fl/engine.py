"""Pluggable execution engines for one round of local training.

The federated trainer's hot loop — "train the round's ``K`` selected
clients from the current global model" — is isolated behind a small
engine interface so the *how* can vary without touching FedAvg
semantics:

* :class:`SequentialEngine` — the reference path: one
  :meth:`EdgeServerClient.train` call per participant, in order.
* :class:`BatchedEngine` — stacks the cohort's full-batch gradient
  descent into ``(G, n, d)`` / ``(G, d, C)`` tensors and replaces ``K``
  per-client forward/gradient passes per epoch with batched matmul
  kernels.  Only valid for the paper's setting (logistic regression,
  ``batch_size=None``); anything else falls back to sequential
  per-client training.  Per-client order of operations matches the
  sequential path (batched ``matmul`` is per-slice gemm), so results
  agree to ``atol=1e-10``.
* :class:`PoolEngine` — a persistent-worker ``multiprocessing`` runtime.
  Workers initialize exactly once per training run: client datasets ship
  via shared memory (:mod:`repro.perf.shared_data`), the static training
  configuration (epochs, SGD, FedProx mu, seed) rides in the pool
  initializer, and per-client model/client objects stay resident in the
  worker between rounds.  Each round is one *chunked cohort submission*:
  the cohort is split into at most ``pool_workers`` contiguous chunks
  and each chunk is a single task carrying only client ids, the round
  index, and the learning rate — the global parameter vector is
  broadcast through a :class:`~repro.perf.shared_data.SharedParameterBlock`
  rewritten by the parent before submission, so per-round IPC is a few
  tiny pickles instead of ``K`` dataset/config/parameter copies.  Every
  chunk replays the exact sequential client code path with mini-batch
  shuffles drawn from a per-``(seed, client, round)`` named substream,
  so results are bit-identical regardless of worker count (and chunk
  count) and identical to sequential execution.

All engines return updates in participant order, which the trainer
relies on for dropout draws, compression, and upload simulation.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.faults.models import substream
from repro.fl.client import EdgeServerClient, LocalUpdate
from repro.fl.model import LogisticRegressionConfig
from repro.fl.population import (
    PopulationState,
    fullbatch_gd_stack,
    train_cohort,
)
from repro.obs.sink import TelemetrySpool, get_spool_context
from repro.perf.cache import StackCache
from repro.perf.shared_data import (
    SharedDatasetStore,
    SharedParameterBlock,
    attach_datasets,
    attach_parameters,
)

if TYPE_CHECKING:
    from repro.fl.training import FederatedConfig
    from repro.obs.observer import Observer

__all__ = [
    "AUTO_BACKEND",
    "BACKENDS",
    "ClientTrainResult",
    "ExecutionEngine",
    "SequentialEngine",
    "BatchedEngine",
    "PoolEngine",
    "PopulationEngine",
    "create_engine",
    "load_break_even_table",
    "resolve_backend",
    "select_backend",
]

BACKENDS = ("sequential", "batched", "pool", "population")

# Sentinel accepted wherever a backend name is: resolved to a concrete
# member of BACKENDS per host/workload by :func:`resolve_backend`.
AUTO_BACKEND = "auto"

# Cohorts below this size gain little from population stacks over the
# batched engine's per-cohort stacking; above it, struct-of-arrays state
# avoids re-stacking per round entirely.
POPULATION_MIN_CLIENTS = 256


@dataclass(frozen=True)
class ClientTrainResult:
    """One client's training outcome plus its measured duration."""

    update: LocalUpdate
    duration_s: float


class ExecutionEngine:
    """Interface every backend implements."""

    name = "abstract"

    def train_round(
        self,
        participants: Sequence[int],
        global_parameters: np.ndarray,
        round_index: int,
        learning_rate: float,
    ) -> list[ClientTrainResult]:
        """Train every participant from ``global_parameters``, in order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release engine resources (pools, shared memory).  Idempotent."""


def _batch_rng(
    config: "FederatedConfig", client_id: int, round_index: int
) -> np.random.Generator | None:
    """Mini-batch shuffle stream shared by the sequential and pool paths.

    Keyed by ``(seed, client, round)`` so any execution order — or
    process — consumes the identical shuffle.  ``None`` on the
    full-batch path, where no shuffle randomness is drawn at all.
    """
    if config.sgd.batch_size is None:
        return None
    return substream(config.seed, "batches", client_id, round_index)


class SequentialEngine(ExecutionEngine):
    """Reference backend: per-client training in participant order."""

    name = "sequential"

    def __init__(
        self,
        clients: list[EdgeServerClient],
        config: "FederatedConfig",
        observer: "Observer | None" = None,
    ) -> None:
        self._clients = clients
        self._config = config
        self._observer = observer

    def train_round(
        self,
        participants: Sequence[int],
        global_parameters: np.ndarray,
        round_index: int,
        learning_rate: float,
    ) -> list[ClientTrainResult]:
        config = self._config
        results: list[ClientTrainResult] = []
        for client_id in participants:
            started = time.perf_counter()
            update = self._clients[client_id].train(
                global_parameters,
                epochs=config.local_epochs,
                learning_rate=learning_rate,
                sgd=config.sgd,
                proximal_mu=config.proximal_mu,
                rng=_batch_rng(config, client_id, round_index),
            )
            results.append(
                ClientTrainResult(update, time.perf_counter() - started)
            )
        return results


class BatchedEngine(ExecutionEngine):
    """Vectorized full-batch GD over the whole cohort at once.

    Participants are grouped by local dataset size ``n_k`` (the iid
    partition differs by at most one sample, so there are at most two
    groups and no padding); each group trains as one stack of batched
    matmuls.  The per-cohort feature stack is memoized in a small FIFO
    cache because samplers revisit cohorts.
    """

    name = "batched"

    def __init__(
        self,
        clients: list[EdgeServerClient],
        config: "FederatedConfig",
        observer: "Observer | None" = None,
    ) -> None:
        self._clients = clients
        self._config = config
        self._observer = observer
        model_config = clients[0].model_config
        self._supported = (
            isinstance(model_config, LogisticRegressionConfig)
            and config.sgd.batch_size is None
        )
        self._model_config = model_config
        self._fallback = SequentialEngine(clients, config, observer)
        self._stack_cache = StackCache(capacity=32)

    def _stacked(
        self, group: tuple[int, ...]
    ) -> tuple[np.ndarray, np.ndarray]:
        cached = self._stack_cache.lookup(group)
        if cached is not None:
            if self._observer is not None:
                self._observer.counter("engine.cache_hits", cache="stack").inc()
            return cached
        features = np.stack(
            [self._clients[c].dataset.features for c in group]
        )
        labels = np.stack([self._clients[c].dataset.labels for c in group])
        self._stack_cache.store(group, (features, labels))
        return features, labels

    def _train_group(
        self,
        group: tuple[int, ...],
        global_parameters: np.ndarray,
        learning_rate: float,
    ) -> list[LocalUpdate]:
        config = self._config
        model_config = self._model_config
        d, n_classes = model_config.n_features, model_config.n_classes
        mu = config.proximal_mu
        l2 = model_config.l2
        epochs = config.local_epochs
        features, labels = self._stacked(group)
        n = labels.shape[1]

        # The arithmetic lives in the shared population kernel so the
        # batched, population, and stacked-grid paths stay one code path.
        weights, bias, losses = fullbatch_gd_stack(
            features,
            labels,
            global_parameters[: d * n_classes].reshape(d, n_classes),
            global_parameters[d * n_classes :],
            epochs=epochs,
            learning_rate=learning_rate,
            activation=model_config.activation,
            l2=l2,
            proximal_mu=mu,
        )

        return [
            LocalUpdate(
                client_id=client_id,
                parameters=np.concatenate(
                    [weights[g].ravel(), bias[g]]
                ),
                n_samples=n,
                epochs=epochs,
                gradient_steps=epochs,
                final_local_loss=float(losses[g]),
            )
            for g, client_id in enumerate(group)
        ]

    def train_round(
        self,
        participants: Sequence[int],
        global_parameters: np.ndarray,
        round_index: int,
        learning_rate: float,
    ) -> list[ClientTrainResult]:
        if not self._supported:
            return self._fallback.train_round(
                participants, global_parameters, round_index, learning_rate
            )
        started = time.perf_counter()
        groups: dict[int, list[int]] = {}
        for client_id in participants:
            groups.setdefault(self._clients[client_id].n_samples, []).append(
                client_id
            )
        updates: dict[int, LocalUpdate] = {}
        for group in groups.values():
            # Canonical (sorted) order: each lane is independent, so the
            # stack order is free — sorting makes the cohort's feature
            # stack cacheable across rounds that reshuffle the same set.
            for update in self._train_group(
                tuple(sorted(group)), global_parameters, learning_rate
            ):
                updates[update.client_id] = update
        elapsed = time.perf_counter() - started
        if self._observer is not None:
            self._observer.counter("engine.batched_rounds").inc()
        per_client = elapsed / max(1, len(participants))
        return [
            ClientTrainResult(updates[client_id], per_client)
            for client_id in participants
        ]


class PopulationEngine(ExecutionEngine):
    """Struct-of-arrays backend over a :class:`PopulationState`.

    Where the batched engine stacks each round's cohort on demand from
    per-object clients, this backend adopts the *whole population* into
    group stacks once at construction and trains every cohort by fancy-
    indexed gather + one :func:`fullbatch_gd_stack` call per group — no
    per-client Python objects on the hot path, so N scales to millions.
    Same restrictions as the batched engine (logistic regression,
    full batch); anything else falls back to sequential per-client
    training.  With the float64 default the results are bit-identical
    to the batched engine and ``atol=1e-10`` against sequential; the
    opt-in float32 population trades that for half the memory.
    """

    name = "population"

    def __init__(
        self,
        clients: list[EdgeServerClient],
        config: "FederatedConfig",
        observer: "Observer | None" = None,
        *,
        state: PopulationState | None = None,
    ) -> None:
        self._config = config
        self._observer = observer
        if state is not None:
            self._state = state
            self._supported = config.sgd.batch_size is None and isinstance(
                state.model_config, LogisticRegressionConfig
            )
            self._fallback = (
                SequentialEngine(clients, config, observer)
                if clients
                else None
            )
            return
        model_config = clients[0].model_config
        self._supported = (
            isinstance(model_config, LogisticRegressionConfig)
            and config.sgd.batch_size is None
        )
        self._fallback = SequentialEngine(clients, config, observer)
        self._state = (
            PopulationState.from_clients(
                clients,
                dtype=getattr(config, "population_dtype", "float64"),
            )
            if self._supported
            else None
        )

    @classmethod
    def from_state(
        cls,
        state: PopulationState,
        config: "FederatedConfig",
        observer: "Observer | None" = None,
    ) -> "PopulationEngine":
        """Build directly on population stacks, no client objects at all.

        The benchmark/synthetic path: at N=10^6 even *constructing* a
        client-object list is prohibitive, so the engine must be
        reachable from :meth:`PopulationState.synthesize` alone.  The
        unsupported-config fallback is unavailable in this mode.
        """
        return cls([], config, observer, state=state)

    @property
    def state(self) -> PopulationState | None:
        return self._state

    def train_round(
        self,
        participants: Sequence[int],
        global_parameters: np.ndarray,
        round_index: int,
        learning_rate: float,
    ) -> list[ClientTrainResult]:
        if not self._supported or self._state is None:
            if self._fallback is None:
                raise RuntimeError(
                    "population engine built from_state cannot fall back "
                    "to per-client training"
                )
            return self._fallback.train_round(
                participants, global_parameters, round_index, learning_rate
            )
        if not participants:
            return []
        started = time.perf_counter()
        config = self._config
        updates = train_cohort(
            self._state,
            participants,
            global_parameters,
            epochs=config.local_epochs,
            learning_rate=learning_rate,
            proximal_mu=config.proximal_mu,
        )
        elapsed = time.perf_counter() - started
        if self._observer is not None:
            self._observer.counter("engine.population_rounds").inc()
            self._observer.counter("engine.population_clients").inc(
                len(participants)
            )
        per_client = elapsed / max(1, len(participants))
        return [ClientTrainResult(update, per_client) for update in updates]


# ----------------------------------------------------------------------
# Pool backend: worker-side state and task function.  Module-level so
# they are picklable under both fork and spawn start methods.
# ----------------------------------------------------------------------
_POOL_STATE: dict = {}


def _pool_initializer(
    spec,
    param_name,
    n_parameters,
    model_config,
    seed,
    epochs,
    sgd,
    mu,
    spool_context=None,
) -> None:
    """One-time worker setup: attach shared data, pin the static config.

    Everything that is constant for the lifetime of a training run —
    datasets, model config, seed, epochs, SGD config, FedProx mu — lands
    here exactly once, so per-round tasks never re-pickle any of it.

    ``spool_context`` is the parent's active ``(spool_dir, unit)`` (see
    :mod:`repro.obs.sink`), present only when the training run has
    telemetry enabled: the worker then opens its own engine-role spool
    in the same directory, so even this innermost worker tier streams
    into the campaign-wide telemetry merge.  Spool failures never break
    training — telemetry is strictly best-effort here.
    """
    datasets, handles = attach_datasets(spec)
    params, param_handle = attach_parameters(param_name, n_parameters)
    _POOL_STATE["datasets"] = datasets
    # Keep every shm buffer alive for the worker's lifetime.
    _POOL_STATE["handles"] = handles + (param_handle,)
    _POOL_STATE["params"] = params
    _POOL_STATE["model_config"] = model_config
    _POOL_STATE["seed"] = seed
    _POOL_STATE["epochs"] = epochs
    _POOL_STATE["sgd"] = sgd
    _POOL_STATE["mu"] = mu
    _POOL_STATE["clients"] = {}
    _POOL_STATE["spool"] = None
    _POOL_STATE["spool_epoch"] = time.perf_counter()
    _POOL_STATE["spool_seq"] = 0
    if spool_context is not None:
        directory, unit = spool_context
        safe_unit = re.sub(r"[^A-Za-z0-9._-]", "_", str(unit)) or "unit"
        try:
            _POOL_STATE["spool"] = TelemetrySpool(
                Path(directory) / f"{safe_unit}.w{os.getpid()}.jsonl",
                unit=unit,
                role="engine",
            )
        except OSError:
            _POOL_STATE["spool"] = None


def _pool_train_chunk(task):
    """Train one contiguous chunk of the round's cohort in this worker.

    The global parameters are snapshotted from the shared block once per
    chunk; each client then runs the exact sequential
    :meth:`EdgeServerClient.train` code path (resident client objects,
    per-``(seed, client, round)`` shuffle substreams), so the result is
    bit-identical to sequential execution for any chunking.
    """
    chunk, round_index, learning_rate = task
    params = np.array(_POOL_STATE["params"])
    epochs = _POOL_STATE["epochs"]
    sgd = _POOL_STATE["sgd"]
    mu = _POOL_STATE["mu"]
    seed = _POOL_STATE["seed"]
    clients = _POOL_STATE["clients"]
    results = []
    for client_id in chunk:
        started = time.perf_counter()
        client = clients.get(client_id)
        if client is None:
            client = EdgeServerClient(
                client_id,
                _POOL_STATE["datasets"][client_id],
                _POOL_STATE["model_config"],
            )
            clients[client_id] = client
        rng = None
        if sgd is not None and sgd.batch_size is not None:
            rng = substream(seed, "batches", client_id, round_index)
        update = client.train(
            params,
            epochs=epochs,
            learning_rate=learning_rate,
            sgd=sgd,
            proximal_mu=mu,
            rng=rng,
        )
        results.append((update, time.perf_counter() - started))
    _spool_chunk_telemetry(chunk, round_index, results)
    return results


def _spool_chunk_telemetry(chunk, round_index, results) -> None:
    """Stream one trained chunk's telemetry to this worker's spool.

    One ``engine.chunk`` event plus one metrics *delta* record per
    chunk: counters in the delta merge by addition at the collector, so
    per-chunk dumps aggregate to the worker's true totals without the
    worker retaining cumulative registries.
    """
    spool = _POOL_STATE.get("spool")
    if spool is None or spool.closed:
        return
    from repro.obs.metrics import MetricsRegistry

    train_s = sum(duration for _, duration in results)
    _POOL_STATE["spool_seq"] += 1
    try:
        # The event line rides the buffer; the metrics record right
        # behind it flushes both with one syscall.  Pool shutdown is a
        # SIGTERM (no interpreter cleanup), so anything less than a
        # per-chunk flush could silently drop the tail of the deltas.
        spool.append(
            "event",
            flush=False,
            event={
                "seq": _POOL_STATE["spool_seq"],
                "category": "engine.chunk",
                "wall_s": time.perf_counter() - _POOL_STATE["spool_epoch"],
                "sim_s": None,
                "fields": {
                    "round": int(round_index),
                    "clients": len(chunk),
                    "train_s": train_s,
                },
            },
        )
        delta = MetricsRegistry()
        delta.counter("engine.pool_clients_trained").inc(len(chunk))
        delta.counter("engine.pool_chunks_trained").inc()
        delta.counter("engine.pool_train_s").inc(train_s)
        spool.append("metrics", flush=True, records=delta.to_records())
    except (OSError, ValueError):
        # A torn spool must never fail training; drop the sink instead.
        spool.close()
        _POOL_STATE["spool"] = None


def _shutdown_pool(
    pool, store: SharedDatasetStore, params: SharedParameterBlock
) -> None:
    try:
        pool.terminate()
        pool.join()
    finally:
        try:
            store.close()
        finally:
            params.close()


def _chunk_evenly(items: list, n_chunks: int) -> list[list]:
    """Split ``items`` into at most ``n_chunks`` contiguous, even chunks."""
    n_chunks = max(1, min(n_chunks, len(items)))
    base, extra = divmod(len(items), n_chunks)
    chunks = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


class PoolEngine(ExecutionEngine):
    """Persistent-worker process pool over shared-memory client datasets.

    Workers initialize once per training run (datasets via shared
    memory, static training config via the initializer) and keep their
    client/model objects resident between rounds; each round submits one
    task per contiguous cohort chunk with the global parameters
    broadcast through a shared block.  Workers run the *same*
    :meth:`EdgeServerClient.train` code path as the sequential engine
    (with the same per-``(seed, client, round)`` mini-batch substreams),
    and ``Pool.map`` preserves chunk order, so results are deterministic
    and bit-identical to sequential execution for any worker count.  The
    pool and the shared blocks are created lazily on the first round and
    released by :meth:`close` (or at garbage collection via a
    finalizer); a failure while the runtime is being brought up rolls
    back every partially created resource before propagating.
    """

    name = "pool"

    def __init__(
        self,
        clients: list[EdgeServerClient],
        config: "FederatedConfig",
        observer: "Observer | None" = None,
    ) -> None:
        self._clients = clients
        self._config = config
        self._observer = observer
        self._pool = None
        self._store: SharedDatasetStore | None = None
        self._params: SharedParameterBlock | None = None
        self._finalizer = None

    def _ensure_pool(self, n_parameters: int) -> None:
        if self._pool is not None:
            return
        import weakref

        store = None
        params = None
        pool = None
        try:
            store = SharedDatasetStore(
                [client.dataset for client in self._clients]
            )
            params = SharedParameterBlock(n_parameters)
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
            context = multiprocessing.get_context(method)
            config = self._config
            pool = context.Pool(
                processes=config.pool_workers,
                initializer=_pool_initializer,
                initargs=(
                    store.spec,
                    params.name,
                    params.n_parameters,
                    self._clients[0].model_config,
                    config.seed,
                    config.local_epochs,
                    config.sgd,
                    config.proximal_mu,
                    # Propagate the campaign's spool context (if any)
                    # explicitly rather than relying on fork inheriting
                    # module state, so the spawn start method telemetry
                    # behaves identically.
                    get_spool_context(),
                ),
            )
        except BaseException:
            # Roll back partial construction: without this, a failure
            # between shm creation and pool start would leak segments
            # that no finalizer knows about yet.
            if pool is not None:
                pool.terminate()
                pool.join()
            if params is not None:
                params.close()
            if store is not None:
                store.close()
            raise
        self._store = store
        self._params = params
        self._pool = pool
        self._finalizer = weakref.finalize(
            self, _shutdown_pool, pool, store, params
        )

    def train_round(
        self,
        participants: Sequence[int],
        global_parameters: np.ndarray,
        round_index: int,
        learning_rate: float,
    ) -> list[ClientTrainResult]:
        if not participants:
            return []
        broadcast = np.ascontiguousarray(global_parameters, dtype=np.float64)
        self._ensure_pool(broadcast.size)
        # Publish the round's model once; Pool.map is a full barrier, so
        # no worker can still be reading when the next round rewrites it.
        self._params.write(broadcast)
        chunks = _chunk_evenly(list(participants), self._config.pool_workers)
        tasks = [
            (tuple(chunk), round_index, learning_rate) for chunk in chunks
        ]
        chunk_results = self._pool.map(_pool_train_chunk, tasks)
        if self._observer is not None:
            self._observer.counter("engine.pool_chunks").inc(len(tasks))
            self._observer.counter("engine.pool_tasks").inc(
                len(participants)
            )
        return [
            ClientTrainResult(update, duration)
            for chunk in chunk_results
            for update, duration in chunk
        ]

    def close(self) -> None:
        if self._finalizer is not None:
            self._finalizer()  # runs _shutdown_pool at most once
            self._pool = None
            self._store = None
            self._params = None


# ----------------------------------------------------------------------
# Data-driven backend selection (``--backend auto``).
#
# Selection is grounded in two measurements rather than flags: the
# timing-law work proxy ``K * E * d`` (per-client samples are fixed by
# the partition, so ``n`` cancels when comparing like against like) and
# the measured pool break-even table in ``BENCH_parallel.json``.  On a
# host where the table shows pool below break-even everywhere (this
# repo's 1-CPU container), ``auto`` never picks pool — not because of a
# hard-coded rule, but because no measured row crosses speedup 1.0.
# ----------------------------------------------------------------------

_BREAK_EVEN_PATH = (
    Path(__file__).resolve().parents[3] / "BENCH_parallel.json"
)


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _row_work(row: dict) -> float:
    """Timing-law work proxy for one break-even row: ``K * E * d``."""
    model = str(row.get("model", "0x0"))
    try:
        n_features = int(model.split("x", 1)[0])
    except ValueError:
        n_features = 0
    return (
        float(row.get("participants", 0))
        * float(row.get("epochs", 0))
        * float(n_features)
    )


def load_break_even_table(path: str | Path | None = None) -> dict | None:
    """Load the measured pool break-even table, or ``None`` if absent.

    Defaults to the repo-root ``BENCH_parallel.json`` written by
    ``benchmarks/bench_parallel.py``.  A missing or malformed table
    simply disables the pool branch of ``auto`` — selection then falls
    back to the always-safe vectorized/sequential choice.
    """
    candidate = Path(path) if path is not None else _BREAK_EVEN_PATH
    try:
        payload = json.loads(candidate.read_text())
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def _pool_crossover_work(table: dict | None) -> float | None:
    """Smallest measured work at which pool beats sequential, if any."""
    if not table:
        return None
    break_even = table.get("break_even") or {}
    rows = break_even.get("rows") or []
    profitable = [
        _row_work(row)
        for row in rows
        if float(row.get("speedup_pool", 0.0)) >= 1.0
    ]
    return min(profitable) if profitable else None


def select_backend(
    *,
    n_clients: int,
    participants: int,
    epochs: int,
    n_features: int,
    vectorizable: bool,
    available_cpus: int | None = None,
    table: dict | None = None,
) -> str:
    """Pick a concrete backend for one workload, data-driven.

    Vectorizable workloads (logistic regression, full batch) always
    take a stacked path — the batched engine's measured headline
    (~4.5x, ``BENCH_engine.json``) dominates anything the pool can
    reach on any core count this repo has measured — with the
    population backend taking over once the client count justifies
    struct-of-arrays state.  Non-vectorizable workloads go to the pool
    only when (a) the host has at least ``pool_cpu_floor`` cores and
    (b) the measured break-even table contains a profitable row at or
    below this workload's timing-law work; otherwise sequential.
    """
    if vectorizable:
        if n_clients >= POPULATION_MIN_CLIENTS:
            return "population"
        if participants >= 2:
            return "batched"
        return "sequential"
    cpus = available_cpus if available_cpus is not None else _available_cpus()
    thresholds = (table or {}).get("thresholds") or {}
    cpu_floor = int(thresholds.get("pool_cpu_floor", 2))
    crossover = _pool_crossover_work(table)
    if cpus >= cpu_floor and crossover is not None:
        work = float(participants) * float(epochs) * float(n_features)
        if work >= crossover:
            return "pool"
    return "sequential"


def resolve_backend(
    backend: str,
    clients: list[EdgeServerClient],
    config: "FederatedConfig",
    *,
    available_cpus: int | None = None,
    table: dict | None = None,
) -> str:
    """Resolve ``"auto"`` to a concrete backend; pass others through."""
    if backend != AUTO_BACKEND:
        return backend
    model_config = clients[0].model_config if clients else None
    vectorizable = (
        isinstance(model_config, LogisticRegressionConfig)
        and config.sgd.batch_size is None
    )
    if table is None:
        table = load_break_even_table()
    return select_backend(
        n_clients=len(clients),
        participants=config.participants_per_round,
        epochs=config.local_epochs,
        n_features=getattr(model_config, "n_features", 0),
        vectorizable=vectorizable,
        available_cpus=available_cpus,
        table=table,
    )


def create_engine(
    backend: str,
    clients: list[EdgeServerClient],
    config: "FederatedConfig",
    observer: "Observer | None" = None,
) -> ExecutionEngine:
    """Instantiate the execution backend named by ``backend``.

    ``"auto"`` is resolved against the current host and workload first
    (see :func:`resolve_backend`).
    """
    if backend == AUTO_BACKEND:
        backend = resolve_backend(backend, clients, config)
    if backend == "sequential":
        return SequentialEngine(clients, config, observer)
    if backend == "batched":
        return BatchedEngine(clients, config, observer)
    if backend == "pool":
        return PoolEngine(clients, config, observer)
    if backend == "population":
        return PopulationEngine(clients, config, observer)
    raise ValueError(
        f"backend must be one of {BACKENDS}; got {backend!r}"
    )
