"""Pluggable execution engines for one round of local training.

The federated trainer's hot loop — "train the round's ``K`` selected
clients from the current global model" — is isolated behind a small
engine interface so the *how* can vary without touching FedAvg
semantics:

* :class:`SequentialEngine` — the reference path: one
  :meth:`EdgeServerClient.train` call per participant, in order.
* :class:`BatchedEngine` — stacks the cohort's full-batch gradient
  descent into ``(G, n, d)`` / ``(G, d, C)`` tensors and replaces ``K``
  per-client forward/gradient passes per epoch with batched matmul
  kernels.  Only valid for the paper's setting (logistic regression,
  ``batch_size=None``); anything else falls back to sequential
  per-client training.  Per-client order of operations matches the
  sequential path (batched ``matmul`` is per-slice gemm), so results
  agree to ``atol=1e-10``.
* :class:`PoolEngine` — a persistent-worker ``multiprocessing`` runtime.
  Workers initialize exactly once per training run: client datasets ship
  via shared memory (:mod:`repro.perf.shared_data`), the static training
  configuration (epochs, SGD, FedProx mu, seed) rides in the pool
  initializer, and per-client model/client objects stay resident in the
  worker between rounds.  Each round is one *chunked cohort submission*:
  the cohort is split into at most ``pool_workers`` contiguous chunks
  and each chunk is a single task carrying only client ids, the round
  index, and the learning rate — the global parameter vector is
  broadcast through a :class:`~repro.perf.shared_data.SharedParameterBlock`
  rewritten by the parent before submission, so per-round IPC is a few
  tiny pickles instead of ``K`` dataset/config/parameter copies.  Every
  chunk replays the exact sequential client code path with mini-batch
  shuffles drawn from a per-``(seed, client, round)`` named substream,
  so results are bit-identical regardless of worker count (and chunk
  count) and identical to sequential execution.

All engines return updates in participant order, which the trainer
relies on for dropout draws, compression, and upload simulation.
"""

from __future__ import annotations

import multiprocessing
import os
import re
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.faults.models import substream
from repro.fl.client import EdgeServerClient, LocalUpdate
from repro.fl.model import LogisticRegressionConfig, _sigmoid
from repro.obs.sink import TelemetrySpool, get_spool_context
from repro.perf.cache import StackCache
from repro.perf.shared_data import (
    SharedDatasetStore,
    SharedParameterBlock,
    attach_datasets,
    attach_parameters,
)

if TYPE_CHECKING:
    from repro.fl.training import FederatedConfig
    from repro.obs.observer import Observer

__all__ = [
    "BACKENDS",
    "ClientTrainResult",
    "ExecutionEngine",
    "SequentialEngine",
    "BatchedEngine",
    "PoolEngine",
    "create_engine",
]

BACKENDS = ("sequential", "batched", "pool")


@dataclass(frozen=True)
class ClientTrainResult:
    """One client's training outcome plus its measured duration."""

    update: LocalUpdate
    duration_s: float


class ExecutionEngine:
    """Interface every backend implements."""

    name = "abstract"

    def train_round(
        self,
        participants: Sequence[int],
        global_parameters: np.ndarray,
        round_index: int,
        learning_rate: float,
    ) -> list[ClientTrainResult]:
        """Train every participant from ``global_parameters``, in order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release engine resources (pools, shared memory).  Idempotent."""


def _batch_rng(
    config: "FederatedConfig", client_id: int, round_index: int
) -> np.random.Generator | None:
    """Mini-batch shuffle stream shared by the sequential and pool paths.

    Keyed by ``(seed, client, round)`` so any execution order — or
    process — consumes the identical shuffle.  ``None`` on the
    full-batch path, where no shuffle randomness is drawn at all.
    """
    if config.sgd.batch_size is None:
        return None
    return substream(config.seed, "batches", client_id, round_index)


class SequentialEngine(ExecutionEngine):
    """Reference backend: per-client training in participant order."""

    name = "sequential"

    def __init__(
        self,
        clients: list[EdgeServerClient],
        config: "FederatedConfig",
        observer: "Observer | None" = None,
    ) -> None:
        self._clients = clients
        self._config = config
        self._observer = observer

    def train_round(
        self,
        participants: Sequence[int],
        global_parameters: np.ndarray,
        round_index: int,
        learning_rate: float,
    ) -> list[ClientTrainResult]:
        config = self._config
        results: list[ClientTrainResult] = []
        for client_id in participants:
            started = time.perf_counter()
            update = self._clients[client_id].train(
                global_parameters,
                epochs=config.local_epochs,
                learning_rate=learning_rate,
                sgd=config.sgd,
                proximal_mu=config.proximal_mu,
                rng=_batch_rng(config, client_id, round_index),
            )
            results.append(
                ClientTrainResult(update, time.perf_counter() - started)
            )
        return results


class BatchedEngine(ExecutionEngine):
    """Vectorized full-batch GD over the whole cohort at once.

    Participants are grouped by local dataset size ``n_k`` (the iid
    partition differs by at most one sample, so there are at most two
    groups and no padding); each group trains as one stack of batched
    matmuls.  The per-cohort feature stack is memoized in a small FIFO
    cache because samplers revisit cohorts.
    """

    name = "batched"

    def __init__(
        self,
        clients: list[EdgeServerClient],
        config: "FederatedConfig",
        observer: "Observer | None" = None,
    ) -> None:
        self._clients = clients
        self._config = config
        self._observer = observer
        model_config = clients[0].model_config
        self._supported = (
            isinstance(model_config, LogisticRegressionConfig)
            and config.sgd.batch_size is None
        )
        self._model_config = model_config
        self._fallback = SequentialEngine(clients, config, observer)
        self._stack_cache = StackCache(capacity=32)

    def _stacked(
        self, group: tuple[int, ...]
    ) -> tuple[np.ndarray, np.ndarray]:
        cached = self._stack_cache.lookup(group)
        if cached is not None:
            if self._observer is not None:
                self._observer.counter("engine.cache_hits", cache="stack").inc()
            return cached
        features = np.stack(
            [self._clients[c].dataset.features for c in group]
        )
        labels = np.stack([self._clients[c].dataset.labels for c in group])
        self._stack_cache.store(group, (features, labels))
        return features, labels

    def _train_group(
        self,
        group: tuple[int, ...],
        global_parameters: np.ndarray,
        learning_rate: float,
    ) -> list[LocalUpdate]:
        config = self._config
        model_config = self._model_config
        d, n_classes = model_config.n_features, model_config.n_classes
        mu = config.proximal_mu
        l2 = model_config.l2
        epochs = config.local_epochs
        features, labels = self._stacked(group)
        n_group, n = labels.shape
        rows = np.arange(n)
        group_index = np.arange(n_group)[:, None]

        weights_global = global_parameters[: d * n_classes].reshape(d, n_classes)
        bias_global = global_parameters[d * n_classes :]
        # Start every client from broadcast *views* of the global model;
        # each epoch rebinds out-of-place, never writing through.
        weights = np.broadcast_to(weights_global, (n_group, d, n_classes))
        bias = np.broadcast_to(bias_global, (n_group, n_classes))
        losses = np.zeros(n_group)
        features_t = features.transpose(0, 2, 1)

        for _ in range(epochs):
            logits = features @ weights
            logits += bias[:, None, :]
            if model_config.activation == "softmax":
                shifted = logits - logits.max(axis=-1, keepdims=True)
                exp = np.exp(shifted, out=shifted)
                probs = np.divide(
                    exp, exp.sum(axis=-1, keepdims=True), out=exp
                )
                picked = probs[group_index, rows, labels]
            else:
                probs = _sigmoid(logits)
                total = probs.sum(axis=-1, keepdims=True)
                picked = (probs / np.maximum(total, 1e-12))[
                    group_index, rows, labels
                ]
            losses = -np.mean(np.log(np.maximum(picked, 1e-12)), axis=1)
            if l2:
                losses = losses + 0.5 * l2 * np.sum(weights**2, axis=(1, 2))
            probs[group_index, rows, labels] -= 1.0
            grad_w = features_t @ probs
            grad_w /= n
            grad_b = probs.sum(axis=1)
            grad_b /= n
            if l2:
                grad_w += l2 * weights
            if mu:
                grad_w += mu * (weights - weights_global)
                grad_b += mu * (bias - bias_global)
            # In-place scale then subtract: same values as
            # ``weights - lr * grad`` with half the large temporaries.
            grad_w *= learning_rate
            grad_b *= learning_rate
            weights = weights - grad_w
            bias = bias - grad_b

        return [
            LocalUpdate(
                client_id=client_id,
                parameters=np.concatenate(
                    [weights[g].ravel(), bias[g]]
                ),
                n_samples=n,
                epochs=epochs,
                gradient_steps=epochs,
                final_local_loss=float(losses[g]),
            )
            for g, client_id in enumerate(group)
        ]

    def train_round(
        self,
        participants: Sequence[int],
        global_parameters: np.ndarray,
        round_index: int,
        learning_rate: float,
    ) -> list[ClientTrainResult]:
        if not self._supported:
            return self._fallback.train_round(
                participants, global_parameters, round_index, learning_rate
            )
        started = time.perf_counter()
        groups: dict[int, list[int]] = {}
        for client_id in participants:
            groups.setdefault(self._clients[client_id].n_samples, []).append(
                client_id
            )
        updates: dict[int, LocalUpdate] = {}
        for group in groups.values():
            # Canonical (sorted) order: each lane is independent, so the
            # stack order is free — sorting makes the cohort's feature
            # stack cacheable across rounds that reshuffle the same set.
            for update in self._train_group(
                tuple(sorted(group)), global_parameters, learning_rate
            ):
                updates[update.client_id] = update
        elapsed = time.perf_counter() - started
        if self._observer is not None:
            self._observer.counter("engine.batched_rounds").inc()
        per_client = elapsed / max(1, len(participants))
        return [
            ClientTrainResult(updates[client_id], per_client)
            for client_id in participants
        ]


# ----------------------------------------------------------------------
# Pool backend: worker-side state and task function.  Module-level so
# they are picklable under both fork and spawn start methods.
# ----------------------------------------------------------------------
_POOL_STATE: dict = {}


def _pool_initializer(
    spec,
    param_name,
    n_parameters,
    model_config,
    seed,
    epochs,
    sgd,
    mu,
    spool_context=None,
) -> None:
    """One-time worker setup: attach shared data, pin the static config.

    Everything that is constant for the lifetime of a training run —
    datasets, model config, seed, epochs, SGD config, FedProx mu — lands
    here exactly once, so per-round tasks never re-pickle any of it.

    ``spool_context`` is the parent's active ``(spool_dir, unit)`` (see
    :mod:`repro.obs.sink`), present only when the training run has
    telemetry enabled: the worker then opens its own engine-role spool
    in the same directory, so even this innermost worker tier streams
    into the campaign-wide telemetry merge.  Spool failures never break
    training — telemetry is strictly best-effort here.
    """
    datasets, handles = attach_datasets(spec)
    params, param_handle = attach_parameters(param_name, n_parameters)
    _POOL_STATE["datasets"] = datasets
    # Keep every shm buffer alive for the worker's lifetime.
    _POOL_STATE["handles"] = handles + (param_handle,)
    _POOL_STATE["params"] = params
    _POOL_STATE["model_config"] = model_config
    _POOL_STATE["seed"] = seed
    _POOL_STATE["epochs"] = epochs
    _POOL_STATE["sgd"] = sgd
    _POOL_STATE["mu"] = mu
    _POOL_STATE["clients"] = {}
    _POOL_STATE["spool"] = None
    _POOL_STATE["spool_epoch"] = time.perf_counter()
    _POOL_STATE["spool_seq"] = 0
    if spool_context is not None:
        directory, unit = spool_context
        safe_unit = re.sub(r"[^A-Za-z0-9._-]", "_", str(unit)) or "unit"
        try:
            _POOL_STATE["spool"] = TelemetrySpool(
                Path(directory) / f"{safe_unit}.w{os.getpid()}.jsonl",
                unit=unit,
                role="engine",
            )
        except OSError:
            _POOL_STATE["spool"] = None


def _pool_train_chunk(task):
    """Train one contiguous chunk of the round's cohort in this worker.

    The global parameters are snapshotted from the shared block once per
    chunk; each client then runs the exact sequential
    :meth:`EdgeServerClient.train` code path (resident client objects,
    per-``(seed, client, round)`` shuffle substreams), so the result is
    bit-identical to sequential execution for any chunking.
    """
    chunk, round_index, learning_rate = task
    params = np.array(_POOL_STATE["params"])
    epochs = _POOL_STATE["epochs"]
    sgd = _POOL_STATE["sgd"]
    mu = _POOL_STATE["mu"]
    seed = _POOL_STATE["seed"]
    clients = _POOL_STATE["clients"]
    results = []
    for client_id in chunk:
        started = time.perf_counter()
        client = clients.get(client_id)
        if client is None:
            client = EdgeServerClient(
                client_id,
                _POOL_STATE["datasets"][client_id],
                _POOL_STATE["model_config"],
            )
            clients[client_id] = client
        rng = None
        if sgd is not None and sgd.batch_size is not None:
            rng = substream(seed, "batches", client_id, round_index)
        update = client.train(
            params,
            epochs=epochs,
            learning_rate=learning_rate,
            sgd=sgd,
            proximal_mu=mu,
            rng=rng,
        )
        results.append((update, time.perf_counter() - started))
    _spool_chunk_telemetry(chunk, round_index, results)
    return results


def _spool_chunk_telemetry(chunk, round_index, results) -> None:
    """Stream one trained chunk's telemetry to this worker's spool.

    One ``engine.chunk`` event plus one metrics *delta* record per
    chunk: counters in the delta merge by addition at the collector, so
    per-chunk dumps aggregate to the worker's true totals without the
    worker retaining cumulative registries.
    """
    spool = _POOL_STATE.get("spool")
    if spool is None or spool.closed:
        return
    from repro.obs.metrics import MetricsRegistry

    train_s = sum(duration for _, duration in results)
    _POOL_STATE["spool_seq"] += 1
    try:
        # The event line rides the buffer; the metrics record right
        # behind it flushes both with one syscall.  Pool shutdown is a
        # SIGTERM (no interpreter cleanup), so anything less than a
        # per-chunk flush could silently drop the tail of the deltas.
        spool.append(
            "event",
            flush=False,
            event={
                "seq": _POOL_STATE["spool_seq"],
                "category": "engine.chunk",
                "wall_s": time.perf_counter() - _POOL_STATE["spool_epoch"],
                "sim_s": None,
                "fields": {
                    "round": int(round_index),
                    "clients": len(chunk),
                    "train_s": train_s,
                },
            },
        )
        delta = MetricsRegistry()
        delta.counter("engine.pool_clients_trained").inc(len(chunk))
        delta.counter("engine.pool_chunks_trained").inc()
        delta.counter("engine.pool_train_s").inc(train_s)
        spool.append("metrics", flush=True, records=delta.to_records())
    except (OSError, ValueError):
        # A torn spool must never fail training; drop the sink instead.
        spool.close()
        _POOL_STATE["spool"] = None


def _shutdown_pool(
    pool, store: SharedDatasetStore, params: SharedParameterBlock
) -> None:
    try:
        pool.terminate()
        pool.join()
    finally:
        try:
            store.close()
        finally:
            params.close()


def _chunk_evenly(items: list, n_chunks: int) -> list[list]:
    """Split ``items`` into at most ``n_chunks`` contiguous, even chunks."""
    n_chunks = max(1, min(n_chunks, len(items)))
    base, extra = divmod(len(items), n_chunks)
    chunks = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


class PoolEngine(ExecutionEngine):
    """Persistent-worker process pool over shared-memory client datasets.

    Workers initialize once per training run (datasets via shared
    memory, static training config via the initializer) and keep their
    client/model objects resident between rounds; each round submits one
    task per contiguous cohort chunk with the global parameters
    broadcast through a shared block.  Workers run the *same*
    :meth:`EdgeServerClient.train` code path as the sequential engine
    (with the same per-``(seed, client, round)`` mini-batch substreams),
    and ``Pool.map`` preserves chunk order, so results are deterministic
    and bit-identical to sequential execution for any worker count.  The
    pool and the shared blocks are created lazily on the first round and
    released by :meth:`close` (or at garbage collection via a
    finalizer); a failure while the runtime is being brought up rolls
    back every partially created resource before propagating.
    """

    name = "pool"

    def __init__(
        self,
        clients: list[EdgeServerClient],
        config: "FederatedConfig",
        observer: "Observer | None" = None,
    ) -> None:
        self._clients = clients
        self._config = config
        self._observer = observer
        self._pool = None
        self._store: SharedDatasetStore | None = None
        self._params: SharedParameterBlock | None = None
        self._finalizer = None

    def _ensure_pool(self, n_parameters: int) -> None:
        if self._pool is not None:
            return
        import weakref

        store = None
        params = None
        pool = None
        try:
            store = SharedDatasetStore(
                [client.dataset for client in self._clients]
            )
            params = SharedParameterBlock(n_parameters)
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
            context = multiprocessing.get_context(method)
            config = self._config
            pool = context.Pool(
                processes=config.pool_workers,
                initializer=_pool_initializer,
                initargs=(
                    store.spec,
                    params.name,
                    params.n_parameters,
                    self._clients[0].model_config,
                    config.seed,
                    config.local_epochs,
                    config.sgd,
                    config.proximal_mu,
                    # Propagate the campaign's spool context (if any)
                    # explicitly rather than relying on fork inheriting
                    # module state, so the spawn start method telemetry
                    # behaves identically.
                    get_spool_context(),
                ),
            )
        except BaseException:
            # Roll back partial construction: without this, a failure
            # between shm creation and pool start would leak segments
            # that no finalizer knows about yet.
            if pool is not None:
                pool.terminate()
                pool.join()
            if params is not None:
                params.close()
            if store is not None:
                store.close()
            raise
        self._store = store
        self._params = params
        self._pool = pool
        self._finalizer = weakref.finalize(
            self, _shutdown_pool, pool, store, params
        )

    def train_round(
        self,
        participants: Sequence[int],
        global_parameters: np.ndarray,
        round_index: int,
        learning_rate: float,
    ) -> list[ClientTrainResult]:
        if not participants:
            return []
        broadcast = np.ascontiguousarray(global_parameters, dtype=np.float64)
        self._ensure_pool(broadcast.size)
        # Publish the round's model once; Pool.map is a full barrier, so
        # no worker can still be reading when the next round rewrites it.
        self._params.write(broadcast)
        chunks = _chunk_evenly(list(participants), self._config.pool_workers)
        tasks = [
            (tuple(chunk), round_index, learning_rate) for chunk in chunks
        ]
        chunk_results = self._pool.map(_pool_train_chunk, tasks)
        if self._observer is not None:
            self._observer.counter("engine.pool_chunks").inc(len(tasks))
            self._observer.counter("engine.pool_tasks").inc(
                len(participants)
            )
        return [
            ClientTrainResult(update, duration)
            for chunk in chunk_results
            for update, duration in chunk
        ]

    def close(self) -> None:
        if self._finalizer is not None:
            self._finalizer()  # runs _shutdown_pool at most once
            self._pool = None
            self._store = None
            self._params = None


def create_engine(
    backend: str,
    clients: list[EdgeServerClient],
    config: "FederatedConfig",
    observer: "Observer | None" = None,
) -> ExecutionEngine:
    """Instantiate the execution backend named by ``backend``."""
    if backend == "sequential":
        return SequentialEngine(clients, config, observer)
    if backend == "batched":
        return BatchedEngine(clients, config, observer)
    if backend == "pool":
        return PoolEngine(clients, config, observer)
    raise ValueError(
        f"backend must be one of {BACKENDS}; got {backend!r}"
    )
