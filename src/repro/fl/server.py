"""Coordinator: model aggregation and global state (steps (2) and (4)).

The coordinator dispatches the global model to the selected edge servers
at the beginning of each round and aggregates the returned local models.
The paper's aggregation rule (eq. (2)) is the unweighted mean over the
``K`` participating servers — valid because the prototype allocates equal
dataset sizes.  A sample-weighted variant (classic FedAvg) is provided
for the heterogeneous-size extension.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

import numpy as np

from repro.fl.client import LocalUpdate
from repro.fl.model import LogisticRegressionConfig, LogisticRegressionModel
from repro.obs.observer import active_or_none

if TYPE_CHECKING:
    from repro.fl.population import AggregationTree
    from repro.obs.observer import Observer

__all__ = [
    "Coordinator",
    "NonFiniteUpdateError",
    "aggregate_mean",
    "aggregate_weighted",
]


class NonFiniteUpdateError(ValueError):
    """An uploaded update contained NaN/Inf parameters.

    Raised by :meth:`Coordinator.aggregate` before the poisoned vector
    can enter the global average.  Carries the offending client ids so
    the resilience layer can drop exactly those updates and retry the
    aggregation over the finite survivors.
    """

    def __init__(self, client_ids: list[int]) -> None:
        super().__init__(
            f"non-finite parameters in updates from clients {client_ids}"
        )
        self.client_ids = tuple(client_ids)


def aggregate_mean(updates: list[LocalUpdate]) -> np.ndarray:
    """Unweighted average of local parameter vectors — eq. (2) of the paper."""
    if not updates:
        raise ValueError("cannot aggregate an empty list of updates")
    stacked = np.stack([u.parameters for u in updates])
    return stacked.mean(axis=0)


def aggregate_weighted(updates: list[LocalUpdate]) -> np.ndarray:
    """Sample-count-weighted average (classic FedAvg aggregation)."""
    if not updates:
        raise ValueError("cannot aggregate an empty list of updates")
    weights = np.array([u.n_samples for u in updates], dtype=float)
    total = weights.sum()
    if total <= 0:
        raise ValueError("total sample count across updates must be positive")
    stacked = np.stack([u.parameters for u in updates])
    return (weights[:, None] * stacked).sum(axis=0) / total


class Coordinator:
    """Holds the global model and applies the aggregation rule.

    Args:
        model_config: architecture of the shared model.
        aggregation: ``"mean"`` (paper's eq. (2)) or ``"weighted"``
            (classic FedAvg, weights by local dataset size).
        initial_parameters: optional starting point ``omega_0``; defaults
            to the zero vector, which for logistic regression is the
            conventional neutral initialisation.
        aggregation_tree: optional
            :class:`~repro.fl.population.AggregationTree`.  When set
            (and ``aggregation="mean"``), a round's updates fold through
            fog tier nodes before the cloud combines the tier partials —
            cloud fan-in ``min(tiers, K)`` instead of ``K``.  The tiered
            fold equals the flat mean to ``~1e-12`` (summation order
            differs), which is why it is opt-in rather than the default.
    """

    def __init__(
        self,
        model_config: LogisticRegressionConfig,
        aggregation: str = "mean",
        initial_parameters: np.ndarray | None = None,
        observer: Observer | None = None,
        aggregation_tree: "AggregationTree | None" = None,
    ) -> None:
        self._observer = active_or_none(observer)
        if aggregation not in ("mean", "weighted"):
            raise ValueError(
                f"aggregation must be 'mean' or 'weighted'; got {aggregation!r}"
            )
        if aggregation_tree is not None and aggregation != "mean":
            raise ValueError(
                "aggregation_tree requires the 'mean' rule; "
                f"got aggregation={aggregation!r}"
            )
        self.model_config = model_config
        self.aggregation = aggregation
        self.aggregation_tree = aggregation_tree
        if initial_parameters is None:
            # The config's factory defines omega_0 (zeros for logistic
            # regression, deterministic He init for the MLP extension);
            # clients build from the same factory, so everyone agrees.
            self._parameters = model_config.build().get_parameters()
        else:
            initial_parameters = np.asarray(initial_parameters, dtype=float)
            if initial_parameters.shape != (model_config.n_parameters,):
                raise ValueError(
                    f"initial_parameters must have shape "
                    f"({model_config.n_parameters},); got {initial_parameters.shape}"
                )
            self._parameters = initial_parameters.copy()
        self.rounds_completed = 0
        # Bumped only when aggregation actually changes the model (a
        # skipped round carries the parameters forward unchanged), so
        # evaluation caches can key on it.
        self.parameters_version = 0

    @property
    def global_parameters(self) -> np.ndarray:
        """Copy of the current global parameter vector ``omega_t``."""
        return self._parameters.copy()

    def global_model(self, copy: bool = True) -> LogisticRegressionModel:
        """Materialise the global parameters as a model for evaluation.

        ``copy=False`` loads the coordinator's vector as a read-only
        view — safe for immediate evaluation, but the returned model
        must not be trained or kept across an aggregation.
        """
        model = self.model_config.build()
        model.set_parameters(self._parameters, copy=copy)
        return model

    def skip_round(self) -> np.ndarray:
        """Advance to round ``t + 1`` without touching the global model.

        The graceful-degradation path: when a round fails (every upload
        lost, or fewer survivors than the quorum), the coordinator
        carries the last good model forward instead of aggregating.
        Returns the (unchanged) global parameter vector.
        """
        self.rounds_completed += 1
        if self._observer is not None:
            self._observer.counter("fl.rounds_skipped").inc()
            self._observer.emit(
                "server.skip_round", round=self.rounds_completed - 1
            )
        return self.global_parameters

    def aggregate(self, updates: list[LocalUpdate]) -> np.ndarray:
        """Apply the aggregation rule and advance to round ``t + 1``.

        Returns the new global parameter vector ``omega_{t+1}``.

        Raises:
            NonFiniteUpdateError: when any update carries NaN/Inf
                parameters — a corrupted upload must never poison the
                global model.
        """
        started = time.perf_counter()
        poisoned = [
            int(u.client_id)
            for u in updates
            if not np.all(np.isfinite(u.parameters))
        ]
        if poisoned:
            if self._observer is not None:
                self._observer.counter("fl.nonfinite_rejected").inc(
                    len(poisoned)
                )
                self._observer.emit(
                    "server.reject_nonfinite",
                    round=self.rounds_completed,
                    clients=poisoned,
                )
            raise NonFiniteUpdateError(poisoned)
        if self.aggregation_tree is not None:
            self._parameters = self.aggregation_tree.fold_updates(updates)
        elif self.aggregation == "mean":
            self._parameters = aggregate_mean(updates)
        else:
            self._parameters = aggregate_weighted(updates)
        self.rounds_completed += 1
        self.parameters_version += 1
        if self._observer is not None:
            self._observer.counter("fl.aggregations").inc()
            if self.aggregation_tree is not None:
                self._observer.counter("fl.tree_aggregations").inc()
                self._observer.counter("fl.tree_fan_in").inc(
                    self.aggregation_tree.fan_in(len(updates))
                )
            self._observer.profiler.observe(
                "profile.aggregate_s", time.perf_counter() - started
            )
            self._observer.emit(
                "server.aggregate",
                round=self.rounds_completed - 1,
                n_updates=len(updates),
                aggregation=self.aggregation,
            )
        return self.global_parameters
