"""Partitioning a central dataset across edge servers.

The paper uniformly allocates the 60 000 MNIST training samples over 20
edge servers (3 000 samples each, i.i.d.), which is :func:`partition_iid`.
The non-iid partitioners (:func:`partition_by_shards`,
:func:`partition_dirichlet`) support the extension study in
``benchmarks/test_bench_ablation_noniid.py``: the paper observes that the
optimal ``K* = 1`` hinges on the i.i.d. assumption, and these partitioners
let us probe what happens when it is violated.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import Dataset

__all__ = ["partition_iid", "partition_by_shards", "partition_dirichlet"]


def _validate(dataset: Dataset, n_partitions: int) -> None:
    if n_partitions < 1:
        raise ValueError(f"n_partitions must be positive; got {n_partitions}")
    if len(dataset) < n_partitions:
        raise ValueError(
            f"cannot split {len(dataset)} samples into {n_partitions} partitions"
        )


def partition_iid(
    dataset: Dataset, n_partitions: int, rng: np.random.Generator
) -> list[Dataset]:
    """Split ``dataset`` into ``n_partitions`` random equal-size shards.

    Sizes differ by at most one sample.  Every sample is assigned to
    exactly one partition.
    """
    _validate(dataset, n_partitions)
    perm = rng.permutation(len(dataset))
    return [dataset.subset(chunk) for chunk in np.array_split(perm, n_partitions)]


def partition_by_shards(
    dataset: Dataset,
    n_partitions: int,
    shards_per_partition: int,
    rng: np.random.Generator,
) -> list[Dataset]:
    """Label-sorted shard partitioning (the classic FedAvg non-iid setup).

    Samples are sorted by label, cut into ``n_partitions *
    shards_per_partition`` contiguous shards, and each partition receives
    ``shards_per_partition`` random shards.  With few shards per partition
    each edge server sees only a couple of classes.
    """
    _validate(dataset, n_partitions)
    if shards_per_partition < 1:
        raise ValueError(
            f"shards_per_partition must be positive; got {shards_per_partition}"
        )
    n_shards = n_partitions * shards_per_partition
    if len(dataset) < n_shards:
        raise ValueError(
            f"cannot cut {len(dataset)} samples into {n_shards} shards"
        )
    order = np.argsort(dataset.labels, kind="stable")
    shards = np.array_split(order, n_shards)
    assignment = rng.permutation(n_shards)
    partitions = []
    for p in range(n_partitions):
        shard_ids = assignment[
            p * shards_per_partition : (p + 1) * shards_per_partition
        ]
        idx = np.concatenate([shards[s] for s in shard_ids])
        partitions.append(dataset.subset(idx))
    return partitions


def partition_dirichlet(
    dataset: Dataset,
    n_partitions: int,
    alpha: float,
    rng: np.random.Generator,
) -> list[Dataset]:
    """Dirichlet label-skew partitioning.

    For every class, the class's samples are divided among partitions
    according to proportions drawn from ``Dirichlet(alpha)``.  Small
    ``alpha`` (e.g. 0.1) produces highly skewed label distributions;
    ``alpha -> inf`` approaches iid.  Partitions are guaranteed non-empty
    by reassigning one sample from the largest partition when needed.
    """
    _validate(dataset, n_partitions)
    if alpha <= 0:
        raise ValueError(f"alpha must be positive; got {alpha}")
    assigned: list[list[np.ndarray]] = [[] for _ in range(n_partitions)]
    for cls in range(dataset.n_classes):
        cls_idx = np.flatnonzero(dataset.labels == cls)
        if cls_idx.size == 0:
            continue
        cls_idx = rng.permutation(cls_idx)
        proportions = rng.dirichlet(np.full(n_partitions, alpha))
        # Convert proportions to cumulative sample counts over this class.
        cuts = (np.cumsum(proportions)[:-1] * cls_idx.size).astype(np.int64)
        for p, chunk in enumerate(np.split(cls_idx, cuts)):
            if chunk.size:
                assigned[p].append(chunk)

    parts = [
        np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        for chunks in assigned
    ]
    # Guarantee non-empty partitions: move single samples from the largest.
    for p in range(n_partitions):
        while parts[p].size == 0:
            donor = int(np.argmax([part.size for part in parts]))
            if parts[donor].size <= 1:
                raise ValueError("not enough samples to make all partitions non-empty")
            parts[p] = parts[donor][-1:]
            parts[donor] = parts[donor][:-1]
    return [dataset.subset(idx) for idx in parts]
