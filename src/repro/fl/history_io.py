"""Persistence for training histories (JSON).

Energy sweeps at paper scale take hours; persisting each run's history
lets the analysis (rounds-to-accuracy, E*T totals, Fig. 4 curves) be
re-done without re-training.  The format is a self-describing JSON
document with a schema version.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.fl.metrics import TrainingHistory

__all__ = [
    "history_to_json",
    "history_from_json",
    "save_history_json",
    "load_history_json",
]

_SCHEMA = "repro.training-history/1"


def history_to_json(history: TrainingHistory, indent: int | None = None) -> str:
    """Serialise a history to a JSON string."""
    document = {
        "schema": _SCHEMA,
        # One serialisation shape for everything: RoundRecord.to_dict()
        # also backs the telemetry round.end events.
        "records": history.to_records(),
    }
    return json.dumps(document, indent=indent)


def history_from_json(text: str) -> TrainingHistory:
    """Parse a history from JSON produced by :func:`history_to_json`."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise ValueError(f"invalid JSON: {error}") from None
    if not isinstance(document, dict) or document.get("schema") != _SCHEMA:
        raise ValueError(
            f"unexpected document schema {document.get('schema')!r}; "
            f"expected {_SCHEMA!r}"
        )
    return TrainingHistory.from_records(document.get("records", []))


def save_history_json(history: TrainingHistory, path: str | Path) -> None:
    """Write a history to a JSON file."""
    Path(path).write_text(history_to_json(history, indent=2))


def load_history_json(path: str | Path) -> TrainingHistory:
    """Read a history from a JSON file."""
    return history_from_json(Path(path).read_text())
