"""Persistence for training histories (JSON).

Energy sweeps at paper scale take hours; persisting each run's history
lets the analysis (rounds-to-accuracy, E*T totals, Fig. 4 curves) be
re-done without re-training.  The format is a self-describing JSON
document with a schema version.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.fl.metrics import RoundRecord, TrainingHistory

__all__ = [
    "history_to_json",
    "history_from_json",
    "save_history_json",
    "load_history_json",
]

_SCHEMA = "repro.training-history/1"


def history_to_json(history: TrainingHistory, indent: int | None = None) -> str:
    """Serialise a history to a JSON string."""
    document = {
        "schema": _SCHEMA,
        "records": [
            {
                "round_index": record.round_index,
                "train_loss": record.train_loss,
                "test_accuracy": record.test_accuracy,
                "participants": list(record.participants),
                "local_epochs": record.local_epochs,
                "learning_rate": record.learning_rate,
                "aggregated": list(record.aggregated),
            }
            for record in history.records
        ],
    }
    return json.dumps(document, indent=indent)


def history_from_json(text: str) -> TrainingHistory:
    """Parse a history from JSON produced by :func:`history_to_json`."""
    try:
        document = json.loads(text)
    except json.JSONDecodeError as error:
        raise ValueError(f"invalid JSON: {error}") from None
    if not isinstance(document, dict) or document.get("schema") != _SCHEMA:
        raise ValueError(
            f"unexpected document schema {document.get('schema')!r}; "
            f"expected {_SCHEMA!r}"
        )
    history = TrainingHistory()
    for entry in document.get("records", []):
        try:
            record = RoundRecord(
                round_index=int(entry["round_index"]),
                train_loss=float(entry["train_loss"]),
                test_accuracy=float(entry["test_accuracy"]),
                participants=tuple(int(p) for p in entry["participants"]),
                local_epochs=int(entry["local_epochs"]),
                learning_rate=float(entry["learning_rate"]),
                aggregated=tuple(int(p) for p in entry.get("aggregated", [])),
            )
        except (KeyError, TypeError) as error:
            raise ValueError(f"malformed record {entry!r}: {error}") from None
        history.append(record)
    return history


def save_history_json(history: TrainingHistory, path: str | Path) -> None:
    """Write a history to a JSON file."""
    Path(path).write_text(history_to_json(history, indent=2))


def load_history_json(path: str | Path) -> TrainingHistory:
    """Read a history from a JSON file."""
    return history_from_json(Path(path).read_text())
