"""Asynchronous federated learning (FedAsync-style) on the event engine.

The paper's FEI loop is *synchronous*: every round waits for its slowest
participant.  The asynchronous alternative lets each edge server train
continuously at its own pace; the coordinator merges every arriving
update immediately with a staleness-discounted weight

    w_global <- (1 - alpha_s) * w_global + alpha_s * w_client,
    alpha_s = alpha * (1 + staleness)^(-beta),

where staleness is the number of global updates that happened since the
client downloaded its base model.  No device ever idles waiting for a
round barrier, so wall-clock time improves on jittery fleets — at the
cost of stale gradients.

The loop runs on :class:`repro.sim.engine.Simulator`: client completion
times are genuine events, so heterogeneous/jittered device speeds
translate directly into update interleavings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.data.dataset import Dataset
from repro.fl.client import EdgeServerClient
from repro.fl.sgd import SGDConfig
from repro.sim.engine import Simulator

__all__ = ["AsyncConfig", "AsyncUpdateRecord", "AsyncResult", "AsyncFederatedTrainer"]


@dataclass(frozen=True)
class AsyncConfig:
    """Hyper-parameters of one asynchronous training run.

    Attributes:
        max_updates: total number of merged updates (the async analogue
            of ``K x T``).
        local_epochs: epochs per local job ``E``.
        mixing_alpha: base mixing weight ``alpha`` in (0, 1].
        staleness_beta: polynomial staleness-discount exponent ``beta``
            (0 disables discounting).
        sgd: local optimizer settings (the learning rate decays per
            *merged update* rather than per round).
        eval_every: evaluate the global model every this many merges.
        target_accuracy: optional early stop.
        seed: randomness for anything the duration function leaves open.
    """

    max_updates: int
    local_epochs: int
    mixing_alpha: float = 0.6
    staleness_beta: float = 0.5
    sgd: SGDConfig = SGDConfig()
    eval_every: int = 1
    target_accuracy: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_updates < 1:
            raise ValueError(f"max_updates must be >= 1; got {self.max_updates}")
        if self.local_epochs < 1:
            raise ValueError(f"local_epochs must be >= 1; got {self.local_epochs}")
        if not 0.0 < self.mixing_alpha <= 1.0:
            raise ValueError(
                f"mixing_alpha must be in (0, 1]; got {self.mixing_alpha}"
            )
        if self.staleness_beta < 0:
            raise ValueError(
                f"staleness_beta must be non-negative; got {self.staleness_beta}"
            )
        if self.eval_every < 1:
            raise ValueError(f"eval_every must be >= 1; got {self.eval_every}")
        if self.target_accuracy is not None and not 0.0 < self.target_accuracy <= 1.0:
            raise ValueError(
                f"target_accuracy must be in (0, 1]; got {self.target_accuracy}"
            )


@dataclass(frozen=True)
class AsyncUpdateRecord:
    """One merged update."""

    update_index: int
    time_s: float
    client_id: int
    staleness: int
    mixing_weight: float
    train_loss: float | None
    test_accuracy: float | None


@dataclass(frozen=True)
class AsyncResult:
    """Outcome of an asynchronous run."""

    records: tuple[AsyncUpdateRecord, ...]
    wall_clock_s: float
    updates: int
    reached_target: bool
    final_loss: float
    final_accuracy: float

    def accuracy_at_time(self, time_s: float) -> float | None:
        """Last evaluated accuracy at or before ``time_s``."""
        best = None
        for record in self.records:
            if record.time_s > time_s:
                break
            if record.test_accuracy is not None:
                best = record.test_accuracy
        return best

    def time_to_accuracy(self, target: float) -> float | None:
        """Simulated seconds until the evaluated accuracy first hits target."""
        for record in self.records:
            if record.test_accuracy is not None and record.test_accuracy >= target:
                return record.time_s
        return None


class AsyncFederatedTrainer:
    """Continuous asynchronous training over a client fleet.

    Args:
        clients: the edge-server clients.
        config: async hyper-parameters.
        train_eval / test_eval: evaluation datasets.
        duration_fn: maps ``client_id -> seconds`` one local job takes
            (called per job, so jittered device models produce varying
            durations).  This is where the hardware substrate plugs in.
    """

    def __init__(
        self,
        clients: list[EdgeServerClient],
        config: AsyncConfig,
        train_eval: Dataset,
        test_eval: Dataset,
        duration_fn: Callable[[int], float],
    ) -> None:
        if not clients:
            raise ValueError("need at least one client")
        self.clients = clients
        self.config = config
        self.train_eval = train_eval
        self.test_eval = test_eval
        self.duration_fn = duration_fn
        model_config = clients[0].model_config
        self._global = model_config.build().get_parameters()
        self._model_config = model_config
        self._version = 0
        self._records: list[AsyncUpdateRecord] = []
        self._stopped = False

    def _mixing_weight(self, staleness: int) -> float:
        return self.config.mixing_alpha * (1.0 + staleness) ** (
            -self.config.staleness_beta
        )

    def _evaluate(self) -> tuple[float, float]:
        model = self._model_config.build()
        model.set_parameters(self._global)
        loss = model.loss(self.train_eval.features, self.train_eval.labels)
        accuracy = model.accuracy(self.test_eval.features, self.test_eval.labels)
        return loss, accuracy

    def run(self) -> AsyncResult:
        """Run until ``max_updates`` merges (or the accuracy target)."""
        config = self.config
        simulator = Simulator()

        def start_job(client_id: int) -> Callable[[Simulator], None]:
            base_version = self._version
            base_parameters = self._global.copy()

            def complete(sim: Simulator) -> None:
                if self._stopped:
                    return
                client = self.clients[client_id]
                learning_rate = config.sgd.rate_at_round(self._version)
                update = client.train(
                    base_parameters,
                    epochs=config.local_epochs,
                    learning_rate=learning_rate,
                    sgd=config.sgd,
                )
                staleness = self._version - base_version
                weight = self._mixing_weight(staleness)
                self._global = (
                    1.0 - weight
                ) * self._global + weight * update.parameters
                self._version += 1

                evaluate = (
                    self._version % config.eval_every == 0
                    or self._version >= config.max_updates
                )
                loss = accuracy = None
                if evaluate:
                    loss, accuracy = self._evaluate()
                self._records.append(
                    AsyncUpdateRecord(
                        update_index=self._version - 1,
                        time_s=sim.now,
                        client_id=client_id,
                        staleness=staleness,
                        mixing_weight=weight,
                        train_loss=loss,
                        test_accuracy=accuracy,
                    )
                )
                hit_target = (
                    config.target_accuracy is not None
                    and accuracy is not None
                    and accuracy >= config.target_accuracy
                )
                if self._version >= config.max_updates or hit_target:
                    self._stopped = True
                    return
                sim.schedule(
                    self.duration_fn(client_id), start_job(client_id)
                )

            return complete

        for client_id in range(len(self.clients)):
            simulator.schedule(self.duration_fn(client_id), start_job(client_id))
        simulator.run()

        final_loss, final_accuracy = self._evaluate()
        reached = (
            config.target_accuracy is not None
            and final_accuracy >= config.target_accuracy
        )
        return AsyncResult(
            records=tuple(self._records),
            wall_clock_s=simulator.now,
            updates=self._version,
            reached_target=reached,
            final_loss=final_loss,
            final_accuracy=final_accuracy,
        )
