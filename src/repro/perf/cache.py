"""Version-keyed memoization helpers for the execution engine.

Two hot paths repeat work on unchanged inputs:

* the coordinator's train/test evaluation re-runs every round even when
  a degraded round carried the previous global model forward unchanged
  (:class:`EvalCache`);
* the batched backend re-stacks the same clients' feature tensors when
  the sampler re-selects the same cohort (:class:`StackCache`).

Both caches are deliberately tiny and explicit — no weak references, no
global registries — so cache behaviour stays auditable in tests via the
``engine.cache_hits{cache=...}`` counters their callers maintain.
"""

from __future__ import annotations

from typing import Any

__all__ = ["EvalCache", "StackCache"]


class EvalCache:
    """Memoizes one evaluation result keyed by a version counter.

    The coordinator bumps ``parameters_version`` only when aggregation
    actually changes the global model; a skipped/degraded round leaves
    it untouched, so the previous round's ``(train_loss, test_accuracy)``
    is still exact and the full-dataset forward passes can be skipped.
    """

    def __init__(self) -> None:
        self._version: int | None = None
        self._value: Any = None
        self.hits = 0
        self.misses = 0

    def lookup(self, version: int) -> Any | None:
        """Return the cached value for ``version``, or ``None``."""
        if self._version == version:
            self.hits += 1
            return self._value
        self.misses += 1
        return None

    def store(self, version: int, value: Any) -> None:
        self._version = version
        self._value = value

    def clear(self) -> None:
        self._version = None
        self._value = None


def _value_nbytes(value: Any) -> int:
    """Bytes held by a cached value (arrays, or containers of arrays)."""
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(value, (tuple, list)):
        return sum(_value_nbytes(item) for item in value)
    return 0


class StackCache:
    """Bounded FIFO cache of stacked per-cohort tensors.

    Keys are tuples of client ids; values are whatever the batched
    backend stacked for that cohort.  Eviction is insertion-ordered: the
    sampler cycles through a small set of cohorts in practice, so FIFO
    with a small capacity captures nearly all repeats without ever
    holding more than ``capacity`` stacked tensors alive.

    ``max_bytes`` adds a second bound for population-scale cohorts,
    where entry *count* stops being a useful memory proxy (32 stacks of
    a 10^5-client cohort is gigabytes): insertion evicts oldest-first
    until the tracked payload fits.  A single entry larger than the
    bound is simply not cached — better a re-stack than an eviction
    storm.
    """

    def __init__(
        self, capacity: int = 32, max_bytes: int | None = None
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1; got {capacity}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1; got {max_bytes}")
        self.capacity = capacity
        self.max_bytes = max_bytes
        self._entries: dict[tuple[int, ...], Any] = {}
        self._nbytes: dict[tuple[int, ...], int] = {}
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0

    def lookup(self, key: tuple[int, ...]) -> Any | None:
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def _evict_oldest(self) -> None:
        oldest = next(iter(self._entries))
        self._entries.pop(oldest)
        self.total_bytes -= self._nbytes.pop(oldest, 0)

    def store(self, key: tuple[int, ...], value: Any) -> None:
        size = _value_nbytes(value) if self.max_bytes is not None else 0
        if self.max_bytes is not None and size > self.max_bytes:
            return
        if key in self._entries:
            self.total_bytes -= self._nbytes.pop(key, 0)
            self._entries.pop(key)
        while len(self._entries) >= self.capacity:
            self._evict_oldest()
        if self.max_bytes is not None:
            while self._entries and self.total_bytes + size > self.max_bytes:
                self._evict_oldest()
        self._entries[key] = value
        self._nbytes[key] = size
        self.total_bytes += size

    def __len__(self) -> int:
        return len(self._entries)
