"""Performance substrate: caches and shared-memory plumbing.

Helpers behind the pluggable execution engine
(:mod:`repro.fl.engine`) and the vectorized sweep evaluation in
:mod:`repro.core.objective`:

* :class:`EvalCache` — version-keyed memoization of the coordinator's
  round evaluation (skipped/degraded rounds reuse the previous result);
* :class:`StackCache` — bounded FIFO cache of stacked per-cohort
  tensors for the batched backend;
* :class:`SharedDatasetStore` / :func:`attach_datasets` — one-time
  shipping of all client datasets to pool workers via
  ``multiprocessing.shared_memory``.
"""

from repro.perf.cache import EvalCache, StackCache
from repro.perf.shared_data import (
    SharedDatasetSpec,
    SharedDatasetStore,
    attach_datasets,
)

__all__ = [
    "EvalCache",
    "StackCache",
    "SharedDatasetSpec",
    "SharedDatasetStore",
    "attach_datasets",
]
