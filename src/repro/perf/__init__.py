"""Performance substrate: caches and shared-memory plumbing.

Helpers behind the pluggable execution engine
(:mod:`repro.fl.engine`) and the vectorized sweep evaluation in
:mod:`repro.core.objective`:

* :class:`EvalCache` — version-keyed memoization of the coordinator's
  round evaluation (skipped/degraded rounds reuse the previous result);
* :class:`StackCache` — bounded FIFO cache of stacked per-cohort
  tensors for the batched backend;
* :class:`SharedDatasetStore` / :func:`attach_datasets` — one-time
  shipping of all client datasets to pool workers via
  ``multiprocessing.shared_memory``;
* :class:`SharedParameterBlock` / :func:`attach_parameters` — per-round
  broadcast of the global model to persistent pool workers;
* :class:`ParallelUnitScheduler` / :func:`estimate_unit_cost` /
  :func:`order_longest_first` — longest-job-first parallel dispatch of
  independent campaign units across processes.
"""

from repro.perf.cache import EvalCache, StackCache
from repro.perf.scheduler import (
    ParallelUnitScheduler,
    ScheduleOutcome,
    estimate_unit_cost,
    order_longest_first,
)
from repro.perf.shared_data import (
    SharedDatasetSpec,
    SharedDatasetStore,
    SharedParameterBlock,
    attach_datasets,
    attach_parameters,
)

__all__ = [
    "EvalCache",
    "StackCache",
    "ParallelUnitScheduler",
    "ScheduleOutcome",
    "SharedDatasetSpec",
    "SharedDatasetStore",
    "SharedParameterBlock",
    "attach_datasets",
    "attach_parameters",
    "estimate_unit_cost",
    "order_longest_first",
]
