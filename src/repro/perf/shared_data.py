"""Shared-memory shipping of client datasets for the pool engine.

The process-pool execution backend must hand every worker the full set
of client datasets exactly once.  Pickling the feature matrices per task
would copy megabytes per round; instead the parent packs all client
shards into two ``multiprocessing.shared_memory`` blocks (features and
labels, each one contiguous concatenation over clients) and ships only a
tiny :class:`SharedDatasetSpec` of names and offsets.  Workers attach
zero-copy numpy views over the blocks and rebuild per-client
:class:`~repro.data.dataset.Dataset` objects from row slices.

Ownership: the parent-side :class:`SharedDatasetStore` is the only
unlinker.  Workers attach read-only and immediately de-register their
handle from the ``resource_tracker`` (Python 3.11 has no ``track=False``
attach), otherwise each worker's tracker would try to unlink the block a
second time at exit and log spurious warnings.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.data.dataset import Dataset

__all__ = [
    "SharedDatasetSpec",
    "SharedDatasetStore",
    "SharedParameterBlock",
    "attach_datasets",
    "attach_parameters",
]


@dataclass(frozen=True)
class SharedDatasetSpec:
    """Everything a worker needs to rebuild the client datasets.

    Attributes:
        features_name / labels_name: shared-memory block names.
        features_dtype / labels_dtype: numpy dtype strings.
        n_features: feature dimensionality (columns of the block).
        n_classes: carried into every rebuilt :class:`Dataset`.
        row_offsets: per-client ``(start_row, n_rows)`` into the blocks.
    """

    features_name: str
    labels_name: str
    features_dtype: str
    labels_dtype: str
    n_features: int
    n_classes: int
    row_offsets: tuple[tuple[int, int], ...]

    @property
    def total_rows(self) -> int:
        return sum(n for _, n in self.row_offsets)


class SharedDatasetStore:
    """Parent-side owner of the packed shared-memory dataset blocks."""

    @classmethod
    def from_population(cls, state) -> "SharedDatasetStore":
        """Pack a :class:`~repro.fl.population.PopulationState` directly.

        The object-list constructor would force a million-client
        population back into per-client :class:`Dataset` objects just to
        concatenate them again.  This path scatters each ``(G, n, d)``
        group stack straight into the shared blocks (one fancy-indexed
        write per group, rows ordered by client id), so the pool engine
        and population engine can share one state without a per-object
        detour.  Blocks are always float64/int64 — the spec's worker
        contract — regardless of the population's compute dtype.
        """
        store = cls.__new__(cls)
        n_samples = state.n_samples
        n_clients = int(n_samples.shape[0])
        starts = np.zeros(n_clients, dtype=np.int64)
        np.cumsum(n_samples[:-1], out=starts[1:])
        total_rows = int(n_samples.sum())
        n_features = state.model_config.n_features
        features_dtype = np.dtype(np.float64)
        labels_dtype = np.dtype(np.int64)
        store._features_shm = shared_memory.SharedMemory(
            create=True,
            size=total_rows * n_features * features_dtype.itemsize,
        )
        store._labels_shm = shared_memory.SharedMemory(
            create=True, size=total_rows * labels_dtype.itemsize
        )
        all_features = np.ndarray(
            (total_rows, n_features),
            dtype=features_dtype,
            buffer=store._features_shm.buf,
        )
        all_labels = np.ndarray(
            (total_rows,), dtype=labels_dtype, buffer=store._labels_shm.buf
        )
        for n, group in state.groups.items():
            dest = (
                starts[group.client_ids][:, None]
                + np.arange(n, dtype=np.int64)[None, :]
            ).ravel()
            all_features[dest] = group.features.reshape(-1, n_features)
            all_labels[dest] = group.labels.reshape(-1)
        store.spec = SharedDatasetSpec(
            features_name=store._features_shm.name,
            labels_name=store._labels_shm.name,
            features_dtype=features_dtype.str,
            labels_dtype=labels_dtype.str,
            n_features=n_features,
            n_classes=state.model_config.n_classes,
            row_offsets=tuple(
                (int(starts[i]), int(n_samples[i])) for i in range(n_clients)
            ),
        )
        store._closed = False
        return store

    def __init__(self, datasets: list[Dataset]) -> None:
        if not datasets:
            raise ValueError("need at least one dataset to share")
        n_classes = datasets[0].n_classes
        n_features = datasets[0].n_features
        for d in datasets:
            if d.n_classes != n_classes or d.n_features != n_features:
                raise ValueError(
                    "all shared datasets must agree on n_features/n_classes"
                )
        features = np.ascontiguousarray(
            np.concatenate([d.features for d in datasets]), dtype=np.float64
        )
        labels = np.ascontiguousarray(
            np.concatenate([d.labels for d in datasets]), dtype=np.int64
        )
        offsets: list[tuple[int, int]] = []
        start = 0
        for d in datasets:
            offsets.append((start, len(d)))
            start += len(d)

        self._features_shm = shared_memory.SharedMemory(
            create=True, size=features.nbytes
        )
        self._labels_shm = shared_memory.SharedMemory(
            create=True, size=labels.nbytes
        )
        np.ndarray(
            features.shape, dtype=features.dtype, buffer=self._features_shm.buf
        )[:] = features
        np.ndarray(
            labels.shape, dtype=labels.dtype, buffer=self._labels_shm.buf
        )[:] = labels
        self.spec = SharedDatasetSpec(
            features_name=self._features_shm.name,
            labels_name=self._labels_shm.name,
            features_dtype=features.dtype.str,
            labels_dtype=labels.dtype.str,
            n_features=n_features,
            n_classes=n_classes,
            row_offsets=tuple(offsets),
        )
        self._closed = False

    def close(self) -> None:
        """Release and unlink both blocks (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for shm in (self._features_shm, self._labels_shm):
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:
                pass


class SharedParameterBlock:
    """Parent-owned shared block broadcasting one flat parameter vector.

    The persistent-worker pool re-reads the global model every round;
    shipping it through the task pickle would copy it once per chunk.
    Instead the parent rewrites this block before each round's
    submission (``Pool.map`` is a full barrier, so workers never observe
    a partial write) and the chunk tasks carry only client ids, the
    round index, and the learning rate.
    """

    def __init__(self, n_parameters: int) -> None:
        if n_parameters < 1:
            raise ValueError(
                f"n_parameters must be >= 1; got {n_parameters}"
            )
        self.n_parameters = int(n_parameters)
        self._shm = shared_memory.SharedMemory(
            create=True, size=self.n_parameters * np.dtype(np.float64).itemsize
        )
        self._view = np.ndarray(
            (self.n_parameters,), dtype=np.float64, buffer=self._shm.buf
        )
        self.name = self._shm.name
        self._closed = False

    def write(self, values: np.ndarray) -> None:
        """Publish ``values`` to every attached worker."""
        self._view[:] = values

    def close(self) -> None:
        """Release and unlink the block (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._view = None
        try:
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:
            pass


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to a block without registering with the resource tracker.

    Python 3.11 has no ``track=False``: forked workers share the
    parent's tracker process, so attach-side register/unregister pairs
    race each other and the tracker logs spurious KeyErrors at exit.
    Only the parent (creator) tracks and unlinks the blocks.
    """
    register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = register


def attach_parameters(
    name: str, n_parameters: int
) -> tuple[np.ndarray, shared_memory.SharedMemory]:
    """Worker-side attach to a :class:`SharedParameterBlock`.

    Returns ``(view, handle)``; the caller must keep ``handle`` alive as
    long as the view is read and must treat the view as read-only.
    """
    handle = _attach_untracked(name)
    view = np.ndarray((n_parameters,), dtype=np.float64, buffer=handle.buf)
    return view, handle


def attach_datasets(
    spec: SharedDatasetSpec,
) -> tuple[list[Dataset], tuple[shared_memory.SharedMemory, ...]]:
    """Worker-side attach: rebuild per-client datasets as zero-copy views.

    Returns ``(datasets, handles)``; the caller must keep ``handles``
    alive as long as the datasets are used (the views borrow their
    buffers).  The handles are never registered with the resource
    tracker, so only the parent-side owner unlinks the blocks.
    """
    features_shm = _attach_untracked(spec.features_name)
    labels_shm = _attach_untracked(spec.labels_name)
    total = spec.total_rows
    all_features = np.ndarray(
        (total, spec.n_features),
        dtype=np.dtype(spec.features_dtype),
        buffer=features_shm.buf,
    )
    all_labels = np.ndarray(
        (total,), dtype=np.dtype(spec.labels_dtype), buffer=labels_shm.buf
    )
    datasets = [
        Dataset(
            all_features[start : start + n_rows],
            all_labels[start : start + n_rows],
            spec.n_classes,
        )
        for start, n_rows in spec.row_offsets
    ]
    return datasets, (features_shm, labels_shm)
