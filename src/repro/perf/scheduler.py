"""Parallel scheduling of independent campaign units across processes.

A campaign grid is embarrassingly parallel: every unit trains from a
fresh, independently seeded prototype and touches no shared mutable
state except the campaign store — whose index updates are atomic in
either backend (flock-serialised manifest rewrites for JSON,
single-row WAL transactions for SQLite; see
:mod:`repro.campaign.repository`).  This module provides the generic
scheduling half of that story:

* a **cost model** derived from the paper's timing law
  ``t = E * (tau0 * n + tau1)``: one round costs ``K * E * n`` local
  work (K participants, E local epochs, n samples per client), so a
  whole unit is estimated at ``rounds * K * E * n``.  Units are
  dispatched longest-first, which keeps the makespan near-optimal for
  the wide/short mix a (K, E) grid produces.
* a **process scheduler** (:class:`ParallelUnitScheduler`) that fans the
  ordered units out over a ``ProcessPoolExecutor``, drains gracefully on
  interrupt (running units finish, queued units are cancelled), and
  reports per-unit outcomes so the caller can decide what a failure
  means.
* a **supervised mode** (:meth:`ParallelUnitScheduler.run_supervised`)
  for fleets where worker death is routine: per-unit bounded retries
  with deterministic capped-exponential-jitter backoff, a watchdog that
  reclaims hung workers via cost-model deadlines and spool-heartbeat
  staleness, ``BrokenProcessPool`` recovery (rebuild the executor,
  charge the guilty unit one attempt, resubmit the innocent survivors),
  and quarantine for units whose retry budget is exhausted — the batch
  completes degraded instead of aborting.

Determinism is the caller's contract: each worker must derive all
randomness from its own unit's seed, and all result recording must be
safe under concurrent writers.  Under that contract the set of bytes a
parallel run produces is identical to a sequential run's — only the
completion *order* differs, which is why the store's canonical index
document is key-sorted.  Supervision preserves the contract: retry
backoff jitter derives from ``(unit key, attempt)`` alone, so a resumed
campaign replays the same schedule decisions.

The module deliberately knows nothing about campaign types — the cost
function is duck-typed over ``max_rounds`` / ``participants`` /
``epochs`` / ``n_train`` / ``n_servers`` attributes, and supervision
identifies units by caller-supplied opaque keys — so ``repro.perf``
stays import-cycle-free below ``repro.campaign``.
"""

from __future__ import annotations

import json
import os
import signal
import time
import traceback as traceback_module
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Sequence

from repro.faults.models import substream
from repro.faults.policies import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.observer import Observer

__all__ = [
    "BACKEND_COST_FACTORS",
    "ScheduleOutcome",
    "SupervisionPolicy",
    "UnitFailure",
    "ParallelUnitScheduler",
    "estimate_unit_cost",
    "order_longest_first",
]


# Per-backend wall-clock efficiency relative to sequential execution,
# calibrated against BENCH_engine.json's measured headline (batched
# trains the K=20/E=16 cell ~4.2x faster at IoT scale; the population
# backend runs the same stacked kernel without per-round re-stacking).
# Factors are deliberately conservative — at BLAS-bound paper scale
# (784x10) vectorization only buys ~1.1x, and an *under*-estimated cost
# would tighten watchdog deadlines, so we err toward sequential-like
# cost.  Pool stays at 1.0: on the measured 1-CPU container it is below
# break-even, and the deadline must cover the slow case.
BACKEND_COST_FACTORS = {
    "sequential": 1.0,
    "batched": 0.25,
    "pool": 1.0,
    "population": 0.2,
    # "auto" resolves to a vectorized backend whenever the workload
    # supports one, so it inherits the batched factor.
    "auto": 0.25,
}


def estimate_unit_cost(unit) -> float:
    """Estimated local-compute cost of one campaign unit.

    Applies the calibrated timing law ``t = E * (tau0 * n + tau1)`` per
    participant per round: with ``K`` participants on ``n = n_train /
    n_servers`` samples each for ``rounds`` rounds, total work scales as
    ``rounds * K * E * n``.  The constant factors (tau0, tau1) cancel in
    the longest-first comparison, so they are omitted.

    Units that train as stacked tensors finish well before sequential
    units of the same (rounds, K, E, n) — without a correction, a mixed
    backends-axis campaign would schedule vectorized units as if they
    were long and derive watchdog deadlines from a blended throughput.
    The per-backend factor (:data:`BACKEND_COST_FACTORS`) keeps both
    the longest-first order and the deadline derivation honest.

    The unit is duck-typed: anything exposing ``max_rounds``,
    ``participants``, ``epochs``, ``n_train`` and ``n_servers`` works;
    an optional ``backend`` attribute selects the efficiency factor
    (unknown or absent backends count as sequential).
    """
    samples_per_client = unit.n_train / max(1, unit.n_servers)
    factor = BACKEND_COST_FACTORS.get(
        getattr(unit, "backend", "sequential"), 1.0
    )
    return (
        float(unit.max_rounds)
        * float(unit.participants)
        * float(unit.epochs)
        * samples_per_client
        * factor
    )


def order_longest_first(units: Sequence) -> list[int]:
    """Indices of ``units`` ordered by descending estimated cost.

    Ties break on the original index so the dispatch order is fully
    deterministic for a given grid.
    """
    return sorted(
        range(len(units)),
        key=lambda i: (-estimate_unit_cost(units[i]), i),
    )


@dataclass(frozen=True)
class SupervisionPolicy:
    """How :meth:`ParallelUnitScheduler.run_supervised` handles failure.

    Attributes:
        retry: per-unit bounded retry budget with capped-exponential
            backoff — :class:`repro.faults.RetryPolicy` reused at the
            unit level.  ``max_retries`` retries means ``max_retries+1``
            total attempts before quarantine.
        unit_timeout_s: hard per-unit deadline (the ``--unit-timeout``
            CLI override).  ``None`` derives deadlines from the cost
            model instead.
        deadline_factor: derived deadline = ``deadline_factor`` × the
            unit's predicted duration (its cost over the observed
            throughput of completed units).  Generous by design: a
            deadline only needs to beat "hung forever", not model
            variance.
        min_deadline_s: floor under derived deadlines so tiny units
            are not killed by scheduling noise.
        heartbeat_timeout_s: a running unit whose telemetry spool has
            not grown for this long is declared hung even without a
            deadline (``None`` disables; only applies to units that
            write spools).
        kill_grace_s: how long a hard-cancel waits between SIGTERM and
            SIGKILL when terminating workers.
        seed: seed of the backoff-jitter RNG stream.  Jitter derives
            from ``(seed, unit key, attempt)`` alone, so schedules are
            reproducible across resumes.
    """

    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_retries=2, base_backoff_s=0.05, max_backoff_s=1.0
        )
    )
    unit_timeout_s: float | None = None
    deadline_factor: float = 8.0
    min_deadline_s: float = 30.0
    heartbeat_timeout_s: float | None = None
    kill_grace_s: float = 5.0
    seed: int = 0

    @property
    def max_attempts(self) -> int:
        """Total attempts before a unit is quarantined."""
        return self.retry.max_retries + 1

    def backoff_s(self, key: str, failed_attempts: int) -> float:
        """Deterministic backoff before re-running ``key``.

        ``failed_attempts`` is how many attempts have failed so far
        (>= 1); jitter comes from an RNG stream named by the unit key
        and that count, so the wait is a pure function of
        ``(seed, key, attempt)`` — identical across resumed runs.
        """
        rng = substream(self.seed, "unit-retry", key, failed_attempts)
        return self.retry.backoff_s(failed_attempts - 1, rng)

    def deadline_s(self, cost: float | None, rate: float | None) -> float | None:
        """The watchdog deadline for a unit of ``cost``, if derivable."""
        if self.unit_timeout_s is not None:
            return self.unit_timeout_s
        if cost is None or rate is None or rate <= 0:
            return None
        return max(self.min_deadline_s, self.deadline_factor * cost / rate)


@dataclass(frozen=True)
class UnitFailure:
    """One failed attempt of one supervised unit.

    Attributes:
        index: the unit's index into the submitted payload sequence.
        key: the unit's opaque identity key.
        attempt: cumulative failed-attempt count after this failure
            (1-based).
        kind: ``error`` (the worker raised), ``timeout`` (watchdog
            deadline or heartbeat staleness), or ``worker-lost`` (the
            worker process died without raising — segfault/OOM-kill).
        error: ``repr`` of the failure.
        traceback: formatted traceback when the worker raised, else
            ``None``.
        quarantined: the retry budget is exhausted; the unit will not
            be resubmitted.
    """

    index: int
    key: str
    attempt: int
    kind: str
    error: str
    traceback: str | None = None
    quarantined: bool = False


@dataclass
class ScheduleOutcome:
    """What happened to one scheduled batch of units.

    Attributes:
        completed: indices (into the submitted sequence) that finished.
        results: ``index -> worker return value`` for completed units
            (``None`` when completion was detected via the caller's
            ``completed_check`` after a pool break ate the future).
        failed: ``index -> repr(exception)`` for units that ended the
            batch failed but not quarantined (in supervised mode this
            only happens when an interrupt cut retries short).
        quarantined: ``index -> last error`` for units whose supervised
            retry budget was exhausted.
        attempts: ``index -> cumulative attempts consumed`` (including
            the succeeding one) for every unit supervision touched.
        cancelled: indices drained without running (interrupt).
        interrupted: True when a KeyboardInterrupt triggered draining.
        hard_cancelled: a second interrupt arrived during the graceful
            drain and workers were terminated instead of awaited.
        pool_rebuilds: how many times a broken process pool was rebuilt.
        timeouts: how many watchdog kills were issued.
        wall_clock_s: scheduler wall-clock for the whole batch.
    """

    completed: list[int] = field(default_factory=list)
    results: dict[int, object] = field(default_factory=dict)
    failed: dict[int, str] = field(default_factory=dict)
    quarantined: dict[int, str] = field(default_factory=dict)
    attempts: dict[int, int] = field(default_factory=dict)
    cancelled: list[int] = field(default_factory=list)
    interrupted: bool = False
    hard_cancelled: bool = False
    pool_rebuilds: int = 0
    timeouts: int = 0
    wall_clock_s: float = 0.0


def _raise_keyboard_interrupt(signum, frame):  # pragma: no cover - signal path
    raise KeyboardInterrupt


def _worker_initializer() -> None:  # pragma: no cover - runs in workers
    """Make SIGTERM unwind the worker like Ctrl-C would.

    Installed in every pool worker so a hard-cancel's SIGTERM (or a
    cluster preemption fanned out by the executor) raises through the
    unit's ``finally`` blocks — engines close, shared-memory segments
    unlink — instead of killing the process with artifacts half-torn.
    """
    try:
        signal.signal(signal.SIGTERM, _raise_keyboard_interrupt)
    except (ValueError, OSError):
        pass


def _read_json(path: Path) -> dict | None:
    """Best-effort JSON read; ``None`` on any miss or parse failure."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, ValueError):
        return None
    return data if isinstance(data, dict) else None


def _format_remote_traceback(error: BaseException) -> str:
    """Traceback text of a worker-raised exception, cause included."""
    return "".join(
        traceback_module.format_exception(
            type(error), error, error.__traceback__
        )
    )


class ParallelUnitScheduler:
    """Longest-first fan-out of independent unit payloads over processes.

    The scheduler is generic: it receives opaque payloads plus a
    *picklable, module-level* worker callable and never interprets
    results beyond success/failure.  Workers are expected to persist
    their own results (e.g. through the campaign repository API); the
    scheduler only tracks outcomes, so a killed run loses nothing that
    completed.
    """

    def __init__(
        self, jobs: int, observer: "Observer | None" = None
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1; got {jobs}")
        self.jobs = int(jobs)
        self._observer = observer

    def _new_executor(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.jobs, initializer=_worker_initializer
        )

    def _hard_cancel(
        self, executor: ProcessPoolExecutor, grace_s: float = 5.0
    ) -> None:
        """Terminate the pool now instead of waiting for in-flight units.

        SIGTERM first — workers convert it to :class:`KeyboardInterrupt`
        (see :func:`_worker_initializer`), so engines tear down and
        shared-memory segments are released — then SIGKILL whatever is
        still alive after the grace period.
        """
        # Snapshot the worker processes *before* shutdown: the executor
        # drops its _processes reference (sets it to None) as part of
        # shutting down, even with wait=False.
        processes = [
            proc
            for proc in (getattr(executor, "_processes", None) or {}).values()
            if proc is not None
        ]
        try:
            executor.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - defensive
            pass
        for proc in processes:
            try:
                if proc.is_alive():
                    proc.terminate()
            except Exception:  # pragma: no cover - racing process death
                pass
        deadline = time.monotonic() + grace_s
        for proc in processes:
            try:
                proc.join(max(0.0, deadline - time.monotonic()))
            except Exception:  # pragma: no cover - racing process death
                pass
        for proc in processes:
            try:
                if proc.is_alive():
                    proc.kill()
                    proc.join(1.0)
            except Exception:  # pragma: no cover - racing process death
                pass

    def run(
        self,
        payloads: Sequence,
        worker: Callable,
        costs: Sequence[float] | None = None,
        poll: Callable[[], object] | None = None,
    ) -> ScheduleOutcome:
        """Execute ``worker(payload)`` for every payload across processes.

        Payloads are dispatched in descending ``costs`` order (submission
        order when ``costs`` is None).  On KeyboardInterrupt the queue is
        drained: queued payloads are cancelled, in-flight ones are
        allowed to finish, and the outcome records all three buckets.  A
        *second* interrupt during the drain hard-cancels instead:
        workers are SIGTERMed (releasing shared memory via their
        interrupt handlers), then SIGKILLed after a grace period, and
        the outcome reports ``hard_cancelled=True``.

        ``poll``, when given, is invoked from the scheduling loop while
        units are in flight (the wait then uses a short timeout instead
        of blocking indefinitely) and once more after the batch drains —
        the hook the campaign runner uses to tail worker telemetry
        spools live.  It runs in the parent process and must not raise.
        """
        outcome = ScheduleOutcome()
        if not payloads:
            return outcome
        order = list(range(len(payloads)))
        if costs is not None:
            if len(costs) != len(payloads):
                raise ValueError("costs must match payloads one-to-one")
            order.sort(key=lambda i: (-costs[i], i))
        observer = self._observer
        if observer is not None:
            observer.emit(
                "scheduler.start",
                jobs=self.jobs,
                units=len(payloads),
            )
            observer.counter("scheduler.units_submitted").inc(len(payloads))
        started = time.perf_counter()
        executor = self._new_executor()
        futures = {}
        try:
            for index in order:
                futures[executor.submit(worker, payloads[index])] = index
            pending = set(futures)
            while pending:
                done, pending = wait(
                    pending,
                    timeout=0.2 if poll is not None else None,
                    return_when=FIRST_COMPLETED,
                )
                if poll is not None:
                    poll()
                for future in done:
                    index = futures[future]
                    error = future.exception()
                    if error is None:
                        outcome.completed.append(index)
                        outcome.results[index] = future.result()
                        if observer is not None:
                            observer.counter(
                                "scheduler.units_completed"
                            ).inc()
                    else:
                        outcome.failed[index] = repr(error)
                        if observer is not None:
                            observer.counter("scheduler.units_failed").inc()
        except KeyboardInterrupt:
            outcome.interrupted = True
            if observer is not None:
                observer.counter("scheduler.interrupts").inc()
            # Graceful drain: cancel whatever has not started, then wait
            # for in-flight units so their store writes complete.  A
            # second Ctrl-C during that wait must not escape into the
            # finally below (whose blocking shutdown would just hang
            # again) — it means "stop waiting", so terminate the pool.
            try:
                executor.shutdown(wait=True, cancel_futures=True)
            except KeyboardInterrupt:
                outcome.hard_cancelled = True
                if observer is not None:
                    observer.counter("scheduler.hard_cancels").inc()
                self._hard_cancel(executor)
            for future, index in futures.items():
                if future.cancelled():
                    outcome.cancelled.append(index)
                elif future.done() and index not in outcome.failed:
                    if index not in outcome.completed:
                        if future.exception() is None:
                            outcome.completed.append(index)
                            outcome.results[index] = future.result()
                        else:
                            outcome.failed[index] = repr(future.exception())
                elif not future.done():
                    # Hard-cancelled mid-flight: the worker was killed
                    # before the future could resolve.
                    outcome.cancelled.append(index)
        finally:
            if not outcome.hard_cancelled:
                try:
                    executor.shutdown(wait=True)
                except KeyboardInterrupt:
                    outcome.hard_cancelled = True
                    if observer is not None:
                        observer.counter("scheduler.hard_cancels").inc()
                    self._hard_cancel(executor)
            if poll is not None:
                # One final poll after every worker has exited, so the
                # spools' last flushed lines are merged before the
                # outcome is interpreted.
                poll()
        outcome.completed.sort()
        outcome.cancelled.sort()
        outcome.wall_clock_s = time.perf_counter() - started
        if observer is not None:
            observer.emit(
                "scheduler.end",
                completed=len(outcome.completed),
                failed=len(outcome.failed),
                cancelled=len(outcome.cancelled),
                interrupted=outcome.interrupted,
                wall_clock_s=round(outcome.wall_clock_s, 6),
            )
            observer.histogram("scheduler.batch_duration_s").observe(
                outcome.wall_clock_s
            )
        return outcome

    # ------------------------------------------------------------------
    # Supervised mode.
    # ------------------------------------------------------------------
    def run_supervised(
        self,
        payloads: Sequence,
        worker: Callable,
        *,
        supervision: SupervisionPolicy,
        costs: Sequence[float] | None = None,
        keys: Sequence[str] | None = None,
        initial_attempts: Sequence[int] | None = None,
        make_payload: Callable[[int, int], object] | None = None,
        on_failure: Callable[[UnitFailure], None] | None = None,
        completed_check: Callable[[int], bool] | None = None,
        heartbeat_dir: str | Path | None = None,
        spool_dir: str | Path | None = None,
        poll: Callable[[], object] | None = None,
    ) -> ScheduleOutcome:
        """Supervised fan-out: retries, watchdog, pool recovery, quarantine.

        Same dispatch semantics as :meth:`run`, plus the failure
        handling a long campaign on flaky hardware needs:

        * a unit whose worker **raises** is retried after a
          deterministic backoff (``supervision.retry``), up to the
          attempt budget, then quarantined;
        * a unit whose worker **dies** (segfault, OOM-kill) breaks the
          ``ProcessPoolExecutor``; the scheduler identifies the guilty
          unit via worker exit codes plus the heartbeat files under
          ``heartbeat_dir`` (SIGKILLed pid ↔ unit key), charges it one
          attempt, rebuilds the executor, and resubmits the innocent
          survivors at no attempt cost;
        * a unit that **hangs** is detected by the watchdog — deadline
          from the cost model and observed throughput (or the hard
          ``unit_timeout_s``), or spool staleness under ``spool_dir`` —
          its worker is SIGKILLed, and the kill is charged to it as a
          ``timeout`` attempt via the same pool-break recovery path.

        Args:
            payloads: opaque per-unit payloads (used when
                ``make_payload`` is None).
            worker: picklable module-level callable.
            supervision: the retry/deadline policy.
            costs: dispatch ordering and deadline derivation.
            keys: stable per-unit identity keys (backoff jitter,
                heartbeat/spool file names).  Defaults to stringified
                indices.
            initial_attempts: failed attempts already on record per
                unit — the resume path; attempt numbering continues
                from here.
            make_payload: ``(index, attempt) -> payload``, letting the
                caller embed the attempt number in what workers see.
            on_failure: called once per failed attempt with a
                :class:`UnitFailure` (the campaign runner persists
                failure records and emits telemetry from it).  Must not
                raise.
            completed_check: ``index -> bool`` consulted for pool-break
                survivors; units whose side effects are already durable
                (e.g. checkpointed in the store) are marked complete
                instead of re-run.
            heartbeat_dir: directory of ``<key>.json`` heartbeat files
                written by workers (pid/attempt/done).
            spool_dir: directory of ``<key>.jsonl`` telemetry spools,
                for staleness detection.
            poll: as in :meth:`run`.
        """
        outcome = ScheduleOutcome()
        total = len(payloads)
        if total == 0:
            return outcome
        if costs is not None and len(costs) != total:
            raise ValueError("costs must match payloads one-to-one")
        if keys is None:
            keys = [str(index) for index in range(total)]
        elif len(keys) != total:
            raise ValueError("keys must match payloads one-to-one")
        if initial_attempts is None:
            initial_attempts = [0] * total
        elif len(initial_attempts) != total:
            raise ValueError("initial_attempts must match payloads one-to-one")
        if make_payload is None:
            make_payload = lambda index, attempt: payloads[index]  # noqa: E731
        heartbeat_dir = Path(heartbeat_dir) if heartbeat_dir is not None else None
        spool_dir = Path(spool_dir) if spool_dir is not None else None

        observer = self._observer
        if observer is not None:
            observer.emit(
                "scheduler.start",
                jobs=self.jobs,
                units=total,
                supervised=True,
                max_attempts=supervision.max_attempts,
            )
            observer.counter("scheduler.units_submitted").inc(total)
        started = time.perf_counter()

        attempts_failed = list(initial_attempts)
        last_error: dict[int, str] = {}
        not_before = {index: 0.0 for index in range(total)}
        waiting = list(range(total))
        waiting.sort(
            key=lambda i: (-(costs[i] if costs is not None else 0.0), i)
        )
        in_flight: dict[object, int] = {}
        first_running: dict[int, float] = {}
        watchdog_marked: set[int] = set()
        known_procs: dict[int, object] = {}
        observations: list[tuple[float, float]] = []
        submit_time: dict[int, float] = {}
        done_set: set[int] = set()

        def observed_rate() -> float | None:
            cost_sum = sum(cost for cost, _ in observations)
            time_sum = sum(duration for _, duration in observations)
            if time_sum <= 0 or cost_sum <= 0:
                return None
            return cost_sum / time_sum

        def read_heartbeat(index: int) -> dict | None:
            if heartbeat_dir is None:
                return None
            return _read_json(heartbeat_dir / f"{keys[index]}.json")

        def charge(
            index: int,
            kind: str,
            error: str,
            traceback_text: str | None = None,
            reschedule: bool = True,
        ) -> None:
            attempts_failed[index] += 1
            last_error[index] = error
            quarantined = attempts_failed[index] >= supervision.max_attempts
            if observer is not None:
                observer.counter("scheduler.units_failed").inc()
            failure = UnitFailure(
                index=index,
                key=keys[index],
                attempt=attempts_failed[index],
                kind=kind,
                error=error,
                traceback=traceback_text,
                quarantined=quarantined,
            )
            if on_failure is not None:
                try:
                    on_failure(failure)
                except Exception:  # pragma: no cover - callback bug guard
                    pass
            if quarantined:
                outcome.quarantined[index] = error
            elif reschedule:
                not_before[index] = time.monotonic() + supervision.backoff_s(
                    keys[index], attempts_failed[index]
                )
                waiting.append(index)
                waiting.sort(
                    key=lambda i: (
                        -(costs[i] if costs is not None else 0.0),
                        i,
                    )
                )

        def mark_completed(index: int, result: object) -> None:
            done_set.add(index)
            watchdog_marked.discard(index)
            outcome.completed.append(index)
            outcome.results[index] = result
            if observer is not None:
                observer.counter("scheduler.units_completed").inc()

        def recover_pool(
            executor: ProcessPoolExecutor, survivors: list[int]
        ) -> ProcessPoolExecutor:
            """Attribute guilt, charge attempts, rebuild, resubmit."""
            now = time.monotonic()
            for proc in known_procs.values():
                try:
                    proc.join(0.5)
                except Exception:  # pragma: no cover - racing death
                    pass
            killed_pids = {
                pid
                for pid, proc in known_procs.items()
                if proc.exitcode == -signal.SIGKILL
            }
            try:
                executor.shutdown(wait=False, cancel_futures=True)
            except Exception:  # pragma: no cover - defensive
                pass
            known_procs.clear()
            outcome.pool_rebuilds += 1
            if observer is not None:
                observer.counter("scheduler.pool_rebuilds").inc()
                observer.emit(
                    "scheduler.pool_rebuild",
                    survivors=len(survivors),
                    killed_pids=sorted(killed_pids),
                )
            for index in survivors:
                first_running.pop(index, None)
                if completed_check is not None and completed_check(index):
                    # The worker finished its durable write before the
                    # pool broke; the future just never resolved.
                    mark_completed(index, None)
                    continue
                heartbeat = read_heartbeat(index)
                lost_worker = (
                    heartbeat is not None
                    and not heartbeat.get("done")
                    and heartbeat.get("pid") in killed_pids
                    and heartbeat.get("attempt") == attempts_failed[index]
                )
                if index in watchdog_marked:
                    charge(
                        index,
                        kind="timeout",
                        error=last_error.get(
                            index, "watchdog: unit exceeded its deadline"
                        ),
                    )
                elif lost_worker:
                    charge(
                        index,
                        kind="worker-lost",
                        error=(
                            "worker process killed "
                            f"(pid {heartbeat.get('pid')}, SIGKILL) while "
                            f"executing attempt {attempts_failed[index]}"
                        ),
                    )
                else:
                    # Innocent bystander: resubmit at no attempt cost.
                    not_before[index] = now
                    waiting.append(index)
            waiting.sort(
                key=lambda i: (-(costs[i] if costs is not None else 0.0), i)
            )
            watchdog_marked.clear()
            return self._new_executor()

        def watchdog_pass(now: float) -> bool:
            """Kill overdue workers; True when a kill was issued."""
            rate = observed_rate()
            killed_any = False
            for future, index in list(in_flight.items()):
                if index in watchdog_marked:
                    continue
                if not future.running():
                    continue
                began = first_running.get(index)
                if began is None:
                    first_running[index] = now
                    continue
                elapsed = now - began
                cost = costs[index] if costs is not None else None
                deadline = supervision.deadline_s(cost, rate)
                reason = None
                if deadline is not None and elapsed > deadline:
                    reason = (
                        f"exceeded its {deadline:.1f}s deadline "
                        f"(running {elapsed:.1f}s)"
                    )
                elif (
                    supervision.heartbeat_timeout_s is not None
                    and spool_dir is not None
                    and elapsed > supervision.heartbeat_timeout_s
                ):
                    spool_path = spool_dir / f"{keys[index]}.jsonl"
                    try:
                        stale_s = now_wall - spool_path.stat().st_mtime
                    except OSError:
                        stale_s = None
                    if (
                        stale_s is not None
                        and stale_s > supervision.heartbeat_timeout_s
                    ):
                        reason = (
                            f"telemetry spool silent for {stale_s:.1f}s "
                            f"(heartbeat timeout "
                            f"{supervision.heartbeat_timeout_s:.1f}s)"
                        )
                if reason is None:
                    continue
                outcome.timeouts += 1
                watchdog_marked.add(index)
                last_error[index] = f"watchdog: unit {reason}"
                if observer is not None:
                    observer.counter("watchdog.timeouts").inc()
                    observer.emit(
                        "watchdog.timeout",
                        key=keys[index],
                        reason=reason,
                    )
                heartbeat = read_heartbeat(index)
                pid = None
                if (
                    heartbeat is not None
                    and not heartbeat.get("done")
                    and heartbeat.get("attempt") == attempts_failed[index]
                ):
                    pid = heartbeat.get("pid")
                targets = (
                    [pid]
                    if isinstance(pid, int)
                    else [
                        known
                        for known, proc in known_procs.items()
                        if proc.is_alive()
                    ]
                )
                for target in targets:
                    try:
                        os.kill(target, signal.SIGKILL)
                        killed_any = True
                    except (ProcessLookupError, PermissionError, OSError):
                        pass
            return killed_any

        executor = self._new_executor()
        try:
            while waiting or in_flight:
                now = time.monotonic()
                now_wall = time.time()
                # Submit everything whose backoff gate has passed, in
                # cost order (the list is kept sorted).
                eligible = [i for i in waiting if not_before[i] <= now]
                for index in eligible:
                    waiting.remove(index)
                    future = executor.submit(
                        worker, make_payload(index, attempts_failed[index])
                    )
                    in_flight[future] = index
                    submit_time[index] = now
                for pid, proc in getattr(executor, "_processes", {}).items():
                    known_procs.setdefault(pid, proc)
                if not in_flight:
                    # Everything is waiting out a backoff.
                    gate = min(not_before[i] for i in waiting)
                    time.sleep(min(0.2, max(0.01, gate - now)))
                    if poll is not None:
                        poll()
                    continue
                done, _ = wait(
                    set(in_flight), timeout=0.2, return_when=FIRST_COMPLETED
                )
                if poll is not None:
                    poll()
                now = time.monotonic()
                broken_indices: list[int] = []
                pool_broken = False
                for future in done:
                    index = in_flight.pop(future)
                    error = future.exception()
                    if error is None:
                        duration = now - first_running.pop(
                            index, submit_time[index]
                        )
                        if costs is not None and duration > 0:
                            observations.append((costs[index], duration))
                        mark_completed(index, future.result())
                    elif isinstance(error, BrokenProcessPool):
                        pool_broken = True
                        broken_indices.append(index)
                    else:
                        first_running.pop(index, None)
                        charge(
                            index,
                            kind="error",
                            error=repr(error),
                            traceback_text=_format_remote_traceback(error),
                        )
                if pool_broken:
                    survivors = broken_indices + list(in_flight.values())
                    in_flight.clear()
                    executor = recover_pool(executor, survivors)
                    continue
                if watchdog_pass(now):
                    # The kill breaks the pool; the next wait() returns
                    # the broken futures and the recovery path runs.
                    continue
        except KeyboardInterrupt:
            outcome.interrupted = True
            if observer is not None:
                observer.counter("scheduler.interrupts").inc()
            try:
                executor.shutdown(wait=True, cancel_futures=True)
            except KeyboardInterrupt:
                outcome.hard_cancelled = True
                if observer is not None:
                    observer.counter("scheduler.hard_cancels").inc()
                self._hard_cancel(executor, supervision.kill_grace_s)
            for future, index in in_flight.items():
                if future.cancelled() or not future.done():
                    outcome.cancelled.append(index)
                    continue
                error = future.exception()
                if error is None:
                    mark_completed(index, future.result())
                elif isinstance(error, BrokenProcessPool):
                    outcome.cancelled.append(index)
                else:
                    # A real failure during the drain still earns its
                    # failure record, so a resumed run keeps counting
                    # attempts from the durable trail.
                    charge(
                        index,
                        kind="error",
                        error=repr(error),
                        traceback_text=_format_remote_traceback(error),
                        reschedule=False,
                    )
            outcome.cancelled.extend(
                index for index in waiting if index not in done_set
            )
        finally:
            if not outcome.hard_cancelled:
                try:
                    executor.shutdown(wait=True, cancel_futures=True)
                except KeyboardInterrupt:
                    outcome.hard_cancelled = True
                    if observer is not None:
                        observer.counter("scheduler.hard_cancels").inc()
                    self._hard_cancel(executor, supervision.kill_grace_s)
            if poll is not None:
                poll()
        for index in range(total):
            consumed = attempts_failed[index] - initial_attempts[index]
            if index in done_set:
                consumed += 1
            if consumed > 0 or index in done_set:
                outcome.attempts[index] = attempts_failed[index] + (
                    1 if index in done_set else 0
                )
            if (
                index in last_error
                and index not in done_set
                and index not in outcome.quarantined
            ):
                outcome.failed[index] = last_error[index]
        outcome.completed.sort()
        outcome.cancelled = sorted(set(outcome.cancelled))
        outcome.wall_clock_s = time.perf_counter() - started
        if observer is not None:
            observer.emit(
                "scheduler.end",
                completed=len(outcome.completed),
                failed=len(outcome.failed),
                quarantined=len(outcome.quarantined),
                cancelled=len(outcome.cancelled),
                interrupted=outcome.interrupted,
                pool_rebuilds=outcome.pool_rebuilds,
                timeouts=outcome.timeouts,
                wall_clock_s=round(outcome.wall_clock_s, 6),
            )
            observer.histogram("scheduler.batch_duration_s").observe(
                outcome.wall_clock_s
            )
        return outcome
