"""Parallel scheduling of independent campaign units across processes.

A campaign grid is embarrassingly parallel: every unit trains from a
fresh, independently seeded prototype and touches no shared mutable
state except the flock-protected :class:`ArtifactStore`.  This module
provides the generic scheduling half of that story:

* a **cost model** derived from the paper's timing law
  ``t = E * (tau0 * n + tau1)``: one round costs ``K * E * n`` local
  work (K participants, E local epochs, n samples per client), so a
  whole unit is estimated at ``rounds * K * E * n``.  Units are
  dispatched longest-first, which keeps the makespan near-optimal for
  the wide/short mix a (K, E) grid produces.
* a **process scheduler** (:class:`ParallelUnitScheduler`) that fans the
  ordered units out over a ``ProcessPoolExecutor``, drains gracefully on
  interrupt (running units finish, queued units are cancelled), and
  reports per-unit outcomes so the caller can decide what a failure
  means.

Determinism is the caller's contract: each worker must derive all
randomness from its own unit's seed, and all result recording must be
safe under concurrent writers.  Under that contract the set of bytes a
parallel run produces is identical to a sequential run's — only the
completion *order* differs, which is why the artifact manifest is
written with sorted keys.

The module deliberately knows nothing about campaign types — the cost
function is duck-typed over ``max_rounds`` / ``participants`` /
``epochs`` / ``n_train`` / ``n_servers`` attributes — so ``repro.perf``
stays import-cycle-free below ``repro.campaign``.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.observer import Observer

__all__ = [
    "ScheduleOutcome",
    "ParallelUnitScheduler",
    "estimate_unit_cost",
    "order_longest_first",
]


def estimate_unit_cost(unit) -> float:
    """Estimated local-compute cost of one campaign unit.

    Applies the calibrated timing law ``t = E * (tau0 * n + tau1)`` per
    participant per round: with ``K`` participants on ``n = n_train /
    n_servers`` samples each for ``rounds`` rounds, total work scales as
    ``rounds * K * E * n``.  The constant factors (tau0, tau1) cancel in
    the longest-first comparison, so they are omitted.

    The unit is duck-typed: anything exposing ``max_rounds``,
    ``participants``, ``epochs``, ``n_train`` and ``n_servers`` works.
    """
    samples_per_client = unit.n_train / max(1, unit.n_servers)
    return (
        float(unit.max_rounds)
        * float(unit.participants)
        * float(unit.epochs)
        * samples_per_client
    )


def order_longest_first(units: Sequence) -> list[int]:
    """Indices of ``units`` ordered by descending estimated cost.

    Ties break on the original index so the dispatch order is fully
    deterministic for a given grid.
    """
    return sorted(
        range(len(units)),
        key=lambda i: (-estimate_unit_cost(units[i]), i),
    )


@dataclass
class ScheduleOutcome:
    """What happened to one scheduled batch of units.

    Attributes:
        completed: indices (into the submitted sequence) that finished.
        results: ``index -> worker return value`` for completed units.
        failed: ``index -> repr(exception)`` for units that raised.
        cancelled: indices drained without running (interrupt).
        interrupted: True when a KeyboardInterrupt triggered draining.
        wall_clock_s: scheduler wall-clock for the whole batch.
    """

    completed: list[int] = field(default_factory=list)
    results: dict[int, object] = field(default_factory=dict)
    failed: dict[int, str] = field(default_factory=dict)
    cancelled: list[int] = field(default_factory=list)
    interrupted: bool = False
    wall_clock_s: float = 0.0


class ParallelUnitScheduler:
    """Longest-first fan-out of independent unit payloads over processes.

    The scheduler is generic: it receives opaque payloads plus a
    *picklable, module-level* worker callable and never interprets
    results beyond success/failure.  Workers are expected to persist
    their own results (e.g. into a flock-protected store); the scheduler
    only tracks outcomes, so a killed run loses nothing that completed.
    """

    def __init__(
        self, jobs: int, observer: "Observer | None" = None
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1; got {jobs}")
        self.jobs = int(jobs)
        self._observer = observer

    def run(
        self,
        payloads: Sequence,
        worker: Callable,
        costs: Sequence[float] | None = None,
        poll: Callable[[], object] | None = None,
    ) -> ScheduleOutcome:
        """Execute ``worker(payload)`` for every payload across processes.

        Payloads are dispatched in descending ``costs`` order (submission
        order when ``costs`` is None).  On KeyboardInterrupt the queue is
        drained: queued payloads are cancelled, in-flight ones are
        allowed to finish, and the outcome records all three buckets.

        ``poll``, when given, is invoked from the scheduling loop while
        units are in flight (the wait then uses a short timeout instead
        of blocking indefinitely) and once more after the batch drains —
        the hook the campaign runner uses to tail worker telemetry
        spools live.  It runs in the parent process and must not raise.
        """
        outcome = ScheduleOutcome()
        if not payloads:
            return outcome
        order = list(range(len(payloads)))
        if costs is not None:
            if len(costs) != len(payloads):
                raise ValueError("costs must match payloads one-to-one")
            order.sort(key=lambda i: (-costs[i], i))
        observer = self._observer
        if observer is not None:
            observer.emit(
                "scheduler.start",
                jobs=self.jobs,
                units=len(payloads),
            )
            observer.counter("scheduler.units_submitted").inc(len(payloads))
        started = time.perf_counter()
        executor = ProcessPoolExecutor(max_workers=self.jobs)
        futures = {}
        try:
            for index in order:
                futures[executor.submit(worker, payloads[index])] = index
            pending = set(futures)
            while pending:
                done, pending = wait(
                    pending,
                    timeout=0.2 if poll is not None else None,
                    return_when=FIRST_COMPLETED,
                )
                if poll is not None:
                    poll()
                for future in done:
                    index = futures[future]
                    error = future.exception()
                    if error is None:
                        outcome.completed.append(index)
                        outcome.results[index] = future.result()
                        if observer is not None:
                            observer.counter(
                                "scheduler.units_completed"
                            ).inc()
                    else:
                        outcome.failed[index] = repr(error)
                        if observer is not None:
                            observer.counter("scheduler.units_failed").inc()
        except KeyboardInterrupt:
            outcome.interrupted = True
            if observer is not None:
                observer.counter("scheduler.interrupts").inc()
            # Graceful drain: cancel whatever has not started, then wait
            # for in-flight units so their store writes complete.
            executor.shutdown(wait=True, cancel_futures=True)
            for future, index in futures.items():
                if future.cancelled():
                    outcome.cancelled.append(index)
                elif future.done() and index not in outcome.failed:
                    if index not in outcome.completed:
                        if future.exception() is None:
                            outcome.completed.append(index)
                            outcome.results[index] = future.result()
                        else:
                            outcome.failed[index] = repr(future.exception())
        finally:
            executor.shutdown(wait=True)
            if poll is not None:
                # One final poll after every worker has exited, so the
                # spools' last flushed lines are merged before the
                # outcome is interpreted.
                poll()
        outcome.completed.sort()
        outcome.cancelled.sort()
        outcome.wall_clock_s = time.perf_counter() - started
        if observer is not None:
            observer.emit(
                "scheduler.end",
                completed=len(outcome.completed),
                failed=len(outcome.failed),
                cancelled=len(outcome.cancelled),
                interrupted=outcome.interrupted,
                wall_clock_s=round(outcome.wall_clock_s, 6),
            )
            observer.histogram("scheduler.batch_duration_s").observe(
                outcome.wall_clock_s
            )
        return outcome
