"""Terminal plotting: render the paper's figures as ASCII charts.

The benchmark harness prints tables; for the *curves* of Figs. 4-6 a
picture is worth having even in a terminal.  This module renders
multi-series line charts on a character canvas with axes, tick labels
and a legend — no plotting dependencies, deterministic output, easy to
assert on in tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

__all__ = ["Series", "line_chart"]

# Glyphs assigned to successive series.
_MARKERS = "*o+x#@%&"


@dataclass(frozen=True)
class Series:
    """One named line on the chart.

    Attributes:
        label: legend entry.
        points: ``(x, y)`` pairs; ``None`` y-values are skipped (e.g. a
            configuration that failed to reach the target).
    """

    label: str
    points: Sequence[tuple[float, float | None]]

    def clean(self) -> list[tuple[float, float]]:
        """The plottable points (finite x and y only)."""
        out = []
        for x, y in self.points:
            if y is None:
                continue
            if math.isfinite(x) and math.isfinite(y):
                out.append((float(x), float(y)))
        return out


def _ticks(lo: float, hi: float, count: int) -> list[float]:
    """``count`` evenly spaced tick values covering [lo, hi]."""
    if count < 2:
        raise ValueError(f"need at least two ticks; got {count}")
    if hi == lo:
        return [lo] * count
    step = (hi - lo) / (count - 1)
    return [lo + i * step for i in range(count)]


def line_chart(
    series: Sequence[Series],
    width: int = 60,
    height: int = 18,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
    log_x: bool = False,
) -> str:
    """Render series as an ASCII line chart.

    Args:
        series: the lines to draw (at least one non-empty).
        width / height: plot-area size in characters.
        title: optional heading.
        x_label / y_label: axis captions.
        log_x: plot x on a log10 scale (useful for the E sweeps, which
            the paper spaces logarithmically).

    Returns:
        The chart as a multi-line string.
    """
    if width < 10 or height < 4:
        raise ValueError(f"chart must be at least 10x4; got {width}x{height}")
    cleaned = [(s.label, s.clean()) for s in series]
    cleaned = [(label, pts) for label, pts in cleaned if pts]
    if not cleaned:
        raise ValueError("nothing to plot: every series is empty")

    def tx(x: float) -> float:
        if not log_x:
            return x
        if x <= 0:
            raise ValueError(f"log_x requires positive x values; got {x}")
        return math.log10(x)

    xs = [tx(x) for _, pts in cleaned for x, _ in pts]
    ys = [y for _, pts in cleaned for _, y in pts]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def to_col(x: float) -> int:
        return round((tx(x) - x_lo) / (x_hi - x_lo) * (width - 1))

    def to_row(y: float) -> int:
        return (height - 1) - round((y - y_lo) / (y_hi - y_lo) * (height - 1))

    for index, (label, pts) in enumerate(cleaned):
        marker = _MARKERS[index % len(_MARKERS)]
        pts = sorted(pts)
        # Connect consecutive points with interpolated dots, then stamp
        # the markers on top so data points stay visible.
        for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
            c0, r0 = to_col(x0), to_row(y0)
            c1, r1 = to_col(x1), to_row(y1)
            steps = max(abs(c1 - c0), abs(r1 - r0))
            for step in range(1, steps):
                frac = step / steps
                col = round(c0 + frac * (c1 - c0))
                row = round(r0 + frac * (r1 - r0))
                if grid[row][col] == " ":
                    grid[row][col] = "."
        for x, y in pts:
            grid[to_row(y)][to_col(x)] = marker

    # Compose with a y-axis gutter and an x-axis line.
    y_ticks = {0: y_hi, height // 2: (y_lo + y_hi) / 2, height - 1: y_lo}
    gutter = max(len(f"{v:.3g}") for v in y_ticks.values()) + 1
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"{y_label}")
    for row in range(height):
        tick = f"{y_ticks[row]:.3g}".rjust(gutter) if row in y_ticks else " " * gutter
        lines.append(f"{tick} |" + "".join(grid[row]))
    lines.append(" " * gutter + " +" + "-" * width)
    left = f"{(10 ** x_lo if log_x else x_lo):.3g}"
    right = f"{(10 ** x_hi if log_x else x_hi):.3g}"
    axis = left + " " * max(1, width - len(left) - len(right)) + right
    lines.append(" " * (gutter + 2) + axis)
    lines.append(" " * (gutter + 2) + x_label + (" [log]" if log_x else ""))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {label}" for i, (label, _) in enumerate(cleaned)
    )
    lines.append(" " * (gutter + 2) + legend)
    return "\n".join(lines)
