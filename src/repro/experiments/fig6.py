"""Fig. 6 reproduction: total energy vs ``E``, and the 49.8 % headline.

The paper fixes ``K``, sweeps the number of local epochs ``E``, and
compares the theoretical bound with measured traces when training to a
fixed accuracy.  The curve is convex with an interior optimum ``E*``;
running at ``E*`` instead of the naive ``(K = 1, E = 1)`` policy reduces
measured energy by ~49.8 %.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.closed_form import e_star
from repro.experiments.calibrate import CalibratedSystem
from repro.experiments.plots import Series, line_chart
from repro.experiments.report import format_percent, render_table

__all__ = ["Fig6Result", "run_fig6"]

# The paper sweeps E over a wide log-ish range; these cover the regimes
# (communication-bound, balanced, drift-bound).
DEFAULT_E_VALUES = (1, 2, 5, 10, 20, 40, 60, 100)


@dataclass(frozen=True)
class Fig6Result:
    """Energy-vs-E series from both sources, plus the savings headline.

    Attributes:
        participants: the fixed ``K``.
        theory_energy: ``E -> joules`` from the bound (None = infeasible).
        measured_energy: ``E -> joules`` from accuracy-targeted runs.
        e_star_theory: continuous closed-form optimum (red asterisk).
        e_star_measured: argmin of the measured series (black asterisk).
        baseline_e: the smallest swept ``E`` whose measured run converged
            — the naive policy the savings are quoted against.  The paper
            quotes 49.8 % vs ``(K = 1, E = 1)``; with a decaying learning
            rate the ``E = 1`` run cannot always reach the target (its
            total step mass ``E * sum(gamma_t)`` is bounded), in which
            case the smallest convergent ``E`` is the honest baseline.
        savings_measured: measured energy reduction of the best-E run vs
            the ``baseline_e`` run at the same K.
        target_accuracy: the accuracy level used.
    """

    participants: int
    theory_energy: dict[int, float | None]
    measured_energy: dict[int, float | None]
    e_star_theory: float
    e_star_measured: int | None
    baseline_e: int | None
    savings_measured: float | None
    target_accuracy: float

    def theory_argmin(self) -> int | None:
        feasible = {e: v for e, v in self.theory_energy.items() if v is not None}
        if not feasible:
            return None
        return min(feasible, key=feasible.__getitem__)

    def report(self) -> str:
        rows = [
            [
                e,
                self.theory_energy[e] if self.theory_energy[e] is not None else "-",
                self.measured_energy[e]
                if self.measured_energy[e] is not None
                else "-",
            ]
            for e in sorted(self.theory_energy)
        ]
        table = render_table(
            ["E", "theory energy (J)", "measured energy (J)"],
            rows,
            title=(
                f"Fig. 6 — energy to accuracy {self.target_accuracy} vs E "
                f"(fixed K = {self.participants})"
            ),
        )
        stars = (
            f"E* (theory, continuous) = {self.e_star_theory:.2f}; "
            f"E* (theory, integer) = {self.theory_argmin()}; "
            f"E* (measured) = {self.e_star_measured}"
        )
        lines = [table, stars]
        if self.savings_measured is not None:
            lines.append(
                f"measured saving at E* vs baseline E={self.baseline_e} "
                f"(paper: 49.8% vs E=1): "
                + format_percent(self.savings_measured)
            )
        lines.append("")
        lines.append(self.chart())
        return "\n".join(lines)

    def chart(self) -> str:
        """ASCII rendering of the two energy-vs-E curves (log-x)."""
        theory = Series(
            "theory bound",
            [(float(e), v) for e, v in sorted(self.theory_energy.items())],
        )
        measured = Series(
            "measured",
            [(float(e), v) for e, v in sorted(self.measured_energy.items())],
        )
        return line_chart(
            [theory, measured],
            title=f"Fig. 6 — energy vs E (K = {self.participants})",
            x_label="E (local epochs)",
            y_label="energy (J)",
            log_x=True,
        )


def run_fig6(
    system: CalibratedSystem,
    participants: int = 1,
    e_values: tuple[int, ...] = DEFAULT_E_VALUES,
    max_rounds: int | None = None,
) -> Fig6Result:
    """Sweep ``E`` with ``K`` fixed, measuring both curves.

    ``participants = 1`` reproduces the paper's setting, where the
    savings are quoted against the ``(K = 1, E = 1)`` baseline.
    """
    scale = system.scale
    max_rounds = max_rounds or scale.max_rounds
    objective = system.objective()

    # One vectorized pass over the whole E sweep (NaN marks infeasible).
    theory_grid = objective.value_integer_grid(participants, np.array(e_values))
    theory: dict[int, float | None] = {
        e: None if math.isnan(value) else float(value)
        for e, value in zip(e_values, theory_grid)
    }
    measured: dict[int, float | None] = {}
    for e in e_values:
        run = system.prototype.run(
            participants=participants,
            epochs=e,
            n_rounds=max_rounds,
            target_accuracy=scale.target_accuracy,
        )
        measured[e] = run.total_energy_j if run.reached_target else None

    try:
        star_theory = e_star(objective, participants)
    except ValueError:
        star_theory = math.nan

    feasible_measured = {e: v for e, v in measured.items() if v is not None}
    star_measured = (
        min(feasible_measured, key=feasible_measured.__getitem__)
        if feasible_measured
        else None
    )
    baseline_e = min(feasible_measured) if feasible_measured else None
    savings = None
    if star_measured is not None and baseline_e is not None:
        best = feasible_measured[star_measured]
        baseline = feasible_measured[baseline_e]
        if baseline > 0:
            savings = 1.0 - best / baseline
    return Fig6Result(
        participants=participants,
        theory_energy=theory,
        measured_energy=measured,
        e_star_theory=star_theory,
        e_star_measured=star_measured,
        baseline_e=baseline_e,
        savings_measured=savings,
        target_accuracy=scale.target_accuracy,
    )
