"""Multi-seed statistics for the measured curves.

A single measured run of Fig. 5/6 carries sampling noise (client
selection, dataset draw).  This module repeats a scalar experiment
across seeds and summarises the distribution — mean, standard deviation
and a t-based confidence interval — which is what an honest reproduction
reports where the paper shows a single trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
from scipy import stats as scipy_stats

__all__ = ["SeedSummary", "summarize", "repeat_over_seeds"]


@dataclass(frozen=True)
class SeedSummary:
    """Distribution summary of one scalar metric across seeds.

    Attributes:
        values: the per-seed measurements (NaN-free).
        mean / std: sample statistics (ddof=1 for std when n > 1).
        ci_low / ci_high: two-sided Student-t confidence interval for the
            mean at the requested level (equal to the mean when n == 1).
        confidence: the CI level used.
    """

    values: tuple[float, ...]
    mean: float
    std: float
    ci_low: float
    ci_high: float
    confidence: float

    @property
    def n(self) -> int:
        return len(self.values)

    def half_width(self) -> float:
        """Half-width of the confidence interval."""
        return (self.ci_high - self.ci_low) / 2.0

    def formatted(self, unit: str = "") -> str:
        """``"12.3 ± 1.4 J (95% CI, n=5)"``-style rendering."""
        suffix = f" {unit}" if unit else ""
        return (
            f"{self.mean:.4g} ± {self.half_width():.2g}{suffix} "
            f"({100 * self.confidence:.0f}% CI, n={self.n})"
        )


def summarize(values: Sequence[float], confidence: float = 0.95) -> SeedSummary:
    """Summarise per-seed measurements into a :class:`SeedSummary`.

    Raises ``ValueError`` on empty input or non-finite values (a failed
    run must be handled by the caller, not silently averaged).
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1); got {confidence}")
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("no values to summarise")
    if not np.all(np.isfinite(array)):
        raise ValueError("values contain non-finite entries")
    mean = float(array.mean())
    if array.size == 1:
        return SeedSummary(
            values=tuple(array.tolist()),
            mean=mean,
            std=0.0,
            ci_low=mean,
            ci_high=mean,
            confidence=confidence,
        )
    std = float(array.std(ddof=1))
    sem = std / np.sqrt(array.size)
    t_crit = float(scipy_stats.t.ppf(0.5 + confidence / 2.0, df=array.size - 1))
    return SeedSummary(
        values=tuple(array.tolist()),
        mean=mean,
        std=std,
        ci_low=mean - t_crit * sem,
        ci_high=mean + t_crit * sem,
        confidence=confidence,
    )


def repeat_over_seeds(
    experiment: Callable[[int], float],
    seeds: Sequence[int],
    confidence: float = 0.95,
    skip_failures: bool = False,
) -> SeedSummary:
    """Run ``experiment(seed)`` for every seed and summarise the results.

    Args:
        experiment: maps a seed to a scalar measurement; may raise to
            signal a failed run.
        seeds: the seeds to use (must be non-empty and distinct).
        confidence: CI level.
        skip_failures: when True, runs that raise ``ValueError`` or
            ``RuntimeError`` are dropped (at least one must survive);
            when False, failures propagate.
    """
    seeds = list(seeds)
    if not seeds:
        raise ValueError("need at least one seed")
    if len(set(seeds)) != len(seeds):
        raise ValueError("seeds must be distinct")
    values = []
    for seed in seeds:
        try:
            values.append(float(experiment(seed)))
        except (ValueError, RuntimeError):
            if not skip_failures:
                raise
    if not values:
        raise ValueError("every seeded run failed")
    return summarize(values, confidence=confidence)
