"""Fig. 5 reproduction: total energy vs ``K`` — theory vs measured traces.

The paper fixes ``E``, sweeps the number of participating edge servers
``K``, and compares the energy predicted by the theoretical bound (13a)
with the energy measured on the prototype when training to a fixed
accuracy (92 %).  Under the iid data allocation the optimum is ``K* = 1``
— selecting a single edge server per round is the most
communication-efficient choice because all local gradients look alike.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.closed_form import k_star
from repro.experiments.calibrate import CalibratedSystem
from repro.experiments.plots import Series, line_chart
from repro.experiments.report import render_table

__all__ = ["Fig5Result", "run_fig5"]


@dataclass(frozen=True)
class Fig5Result:
    """Energy-vs-K series from both sources.

    Attributes:
        epochs: the fixed ``E``.
        theory_energy: ``K -> joules`` from the bound (None = infeasible).
        measured_energy: ``K -> joules`` from prototype runs trained to
            the accuracy target (None = target not reached in budget).
        k_star_theory: continuous closed-form optimum (red asterisk).
        k_star_measured: argmin of the measured series (black asterisk).
        target_accuracy: accuracy level the measured runs trained to.
    """

    epochs: int
    theory_energy: dict[int, float | None]
    measured_energy: dict[int, float | None]
    k_star_theory: float
    k_star_measured: int | None
    target_accuracy: float

    def theory_argmin(self) -> int | None:
        """Integer K minimising the theory curve."""
        feasible = {k: e for k, e in self.theory_energy.items() if e is not None}
        if not feasible:
            return None
        return min(feasible, key=feasible.__getitem__)

    def report(self) -> str:
        rows = [
            [
                k,
                self.theory_energy[k] if self.theory_energy[k] is not None else "-",
                self.measured_energy[k]
                if self.measured_energy[k] is not None
                else "-",
            ]
            for k in sorted(self.theory_energy)
        ]
        table = render_table(
            ["K", "theory energy (J)", "measured energy (J)"],
            rows,
            title=(
                f"Fig. 5 — energy to accuracy {self.target_accuracy} vs K "
                f"(fixed E = {self.epochs})"
            ),
        )
        stars = (
            f"K* (theory, continuous) = {self.k_star_theory:.2f}; "
            f"K* (theory, integer) = {self.theory_argmin()}; "
            f"K* (measured) = {self.k_star_measured}"
        )
        return f"{table}\n{stars}\n\n{self.chart()}"

    def chart(self) -> str:
        """ASCII rendering of the two energy-vs-K curves."""
        theory = Series(
            "theory bound",
            [(float(k), v) for k, v in sorted(self.theory_energy.items())],
        )
        measured = Series(
            "measured",
            [(float(k), v) for k, v in sorted(self.measured_energy.items())],
        )
        return line_chart(
            [theory, measured],
            title=f"Fig. 5 — energy vs K (E = {self.epochs})",
            x_label="K (participants per round)",
            y_label="energy (J)",
        )


def run_fig5(
    system: CalibratedSystem,
    epochs: int = 5,
    k_values: tuple[int, ...] | None = None,
    max_rounds: int | None = None,
) -> Fig5Result:
    """Sweep ``K`` with ``E`` fixed, measuring both curves.

    Args:
        system: a calibrated testbed (provides both the objective and the
            prototype).
        epochs: the fixed ``E`` (the paper pins E while sweeping K).
        k_values: swept participation counts; defaults to ``1..N``.
        max_rounds: round budget per measured run; defaults to the
            scale's ``max_rounds``.
    """
    scale = system.scale
    k_values = k_values or tuple(range(1, scale.n_servers + 1))
    max_rounds = max_rounds or scale.max_rounds
    objective = system.objective()

    # One vectorized pass over the whole K sweep (NaN marks infeasible).
    theory_grid = objective.value_integer_grid(np.array(k_values), epochs)
    theory: dict[int, float | None] = {
        k: None if math.isnan(value) else float(value)
        for k, value in zip(k_values, theory_grid)
    }
    measured: dict[int, float | None] = {}
    for k in k_values:
        run = system.prototype.run(
            participants=k,
            epochs=epochs,
            n_rounds=max_rounds,
            target_accuracy=scale.target_accuracy,
        )
        measured[k] = run.total_energy_j if run.reached_target else None

    try:
        star_theory = k_star(objective, epochs)
    except ValueError:
        star_theory = math.nan
    feasible_measured = {k: e for k, e in measured.items() if e is not None}
    star_measured = (
        min(feasible_measured, key=feasible_measured.__getitem__)
        if feasible_measured
        else None
    )
    return Fig5Result(
        epochs=epochs,
        theory_energy=theory,
        measured_energy=measured,
        k_star_theory=star_theory,
        k_star_measured=star_measured,
        target_accuracy=scale.target_accuracy,
    )
