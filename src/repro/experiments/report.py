"""Plain-text report rendering for the experiment harness.

Every benchmark prints the rows/series the paper's tables and figures
report, in aligned plain text, so a terminal run of the harness can be
compared against the paper side by side without plotting.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_series", "format_percent"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned fixed-width table.

    Floats are shown with 4 significant decimals; everything else via
    ``str``.
    """
    if not headers:
        raise ValueError("headers must be non-empty")
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )

    def fmt(cell: object) -> str:
        if isinstance(cell, bool):
            return str(cell)
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def render_series(
    x_label: str,
    y_label: str,
    points: Sequence[tuple[object, object]],
    title: str | None = None,
) -> str:
    """Render an (x, y) series as a two-column table — one figure line."""
    return render_table([x_label, y_label], [list(p) for p in points], title=title)


def format_percent(fraction: float) -> str:
    """``0.498 -> '49.8%'``."""
    return f"{100.0 * fraction:.1f}%"
