"""Experiment configuration: Table II echo and reproduction scales.

Table II of the paper lists the simulation configuration (model type,
sizes, optimizer).  :func:`table_ii_rows` reproduces it verbatim.

Because this reproduction's substrate is a pure-Python simulator, each
experiment can run at the paper's full scale (60 000 training samples,
hundreds of global rounds) or at a reduced scale for fast CI runs.
:class:`ExperimentScale` bundles the knobs; the two presets are
``PAPER_SCALE`` and ``TEST_SCALE``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fl.model import LogisticRegressionConfig
from repro.fl.sgd import SGDConfig

__all__ = ["ExperimentScale", "PAPER_SCALE", "TEST_SCALE", "table_ii_rows"]


def table_ii_rows() -> list[tuple[str, str]]:
    """The simulation configuration exactly as printed in Table II."""
    return [
        ("Model Type", "Multinomial Logistic Regression"),
        ("Input Size", "784*1"),
        ("Output Size", "10*1"),
        ("Activation Function", "Sigmoid"),
        ("Optimizer", "SGD, learning rate 0.01 with decay rate 0.99"),
    ]


@dataclass(frozen=True)
class ExperimentScale:
    """Size knobs shared by the figure/table reproductions.

    Attributes:
        name: preset label used in reports.
        n_train / n_test: synthetic-MNIST sizes.
        n_servers: testbed size ``N``.
        max_rounds: round budget for accuracy-driven runs.
        target_accuracy: the accuracy level energy sweeps train to
            (the paper uses 92 % for Figs. 5-6).
        l2: L2 regularisation strength of the trained model.
            Proposition 1 of the paper assumes each local loss is
            *mu-strongly convex*; plain logistic regression is only
            convex, and on an over-parameterised synthetic task it
            interpolates (minimum loss ~ 0, vanishing gradient variance
            at the optimum), which would degenerate the bound's A1/A2
            terms.  A small L2 term supplies the assumed strong
            convexity.  See DESIGN.md.
        seed: base seed for every derived random stream.
    """

    name: str
    n_train: int
    n_test: int
    n_servers: int
    max_rounds: int
    target_accuracy: float
    l2: float = 1e-3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_train < self.n_servers:
            raise ValueError("need at least one training sample per server")
        if not 0.0 < self.target_accuracy <= 1.0:
            raise ValueError(
                f"target_accuracy must be in (0, 1]; got {self.target_accuracy}"
            )
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")

    @property
    def samples_per_server(self) -> int:
        """Uniform ``n_k`` (the paper: 60 000 / 20 = 3 000)."""
        return self.n_train // self.n_servers

    def model_config(self) -> LogisticRegressionConfig:
        """The paper's model (Table II), plus the strong-convexity term."""
        return LogisticRegressionConfig(n_features=784, n_classes=10, l2=self.l2)

    def sgd_config(self) -> SGDConfig:
        """The paper's optimizer (Table II)."""
        return SGDConfig(learning_rate=0.01, decay=0.99, batch_size=None)


# The paper's full setup: 20 Pis x 3000 samples, 92 % accuracy target.
PAPER_SCALE = ExperimentScale(
    name="paper",
    n_train=60_000,
    n_test=10_000,
    n_servers=20,
    max_rounds=1000,
    target_accuracy=0.92,
)

# Reduced scale used by the test suite and the default benchmark runs:
# same 20-server shape, ~30x less data and a looser target so a sweep
# finishes in seconds.
TEST_SCALE = ExperimentScale(
    name="test",
    n_train=2_000,
    n_test=600,
    n_servers=20,
    max_rounds=150,
    target_accuracy=0.82,
)
