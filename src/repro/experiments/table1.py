"""Table I reproduction: local-training duration vs ``(E, n_k)``.

The paper measures the duration of the local-training step on a
Raspberry Pi for E in {10, 20, 40} and n_k in {100, 500, 1000, 2000},
observes linear scaling in both, and least-squares fits eq. (5) to
obtain ``c0 = 7.79e-5`` and ``c1 = 3.34e-3``.

This module regenerates the grid on the simulated device, reruns the
fit, and reports both side by side with the paper's numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import constants
from repro.core.calibration import EnergyFit, fit_training_energy
from repro.experiments.report import render_table
from repro.hardware.raspberry_pi import RaspberryPiEdgeServer

__all__ = ["Table1Result", "run_table1"]

_E_VALUES = (10, 20, 40)
_N_VALUES = (100, 500, 1000, 2000)


@dataclass(frozen=True)
class Table1Result:
    """The regenerated Table I grid and the (c0, c1) fit.

    Attributes:
        durations: mapping ``(E, n_k) -> seconds`` from the simulated
            device.
        paper_durations: the paper's measured values for the same grid.
        fit: least-squares ``(c0, c1)`` over the regenerated grid.
    """

    durations: dict[tuple[int, int], float]
    paper_durations: dict[tuple[int, int], float]
    fit: EnergyFit

    def rows(self) -> list[tuple[int, int, float, float]]:
        """``(E, n_k, simulated_s, paper_s)`` rows in the paper's order."""
        return [
            (e, n, self.durations[(e, n)], self.paper_durations[(e, n)])
            for e in _E_VALUES
            for n in _N_VALUES
        ]

    def max_relative_error(self) -> float:
        """Largest |simulated - paper| / paper over the grid."""
        return max(
            abs(sim - paper) / paper for _, _, sim, paper in self.rows()
        )

    def report(self) -> str:
        """Aligned text report comparing simulated and paper durations."""
        table = render_table(
            ["E", "n_k", "time step(3) sim (s)", "time step(3) paper (s)"],
            [list(r) for r in self.rows()],
            title="Table I — duration of local training step",
        )
        fit_line = (
            f"fit: c0 = {self.fit.c0:.3e} J/sample-epoch "
            f"(paper {constants.C0_JOULES_PER_SAMPLE_EPOCH:.3e}), "
            f"c1 = {self.fit.c1:.3e} J/epoch "
            f"(paper {constants.C1_JOULES_PER_EPOCH:.3e})"
        )
        return f"{table}\n{fit_line}"


def run_table1(device: RaspberryPiEdgeServer | None = None) -> Table1Result:
    """Regenerate Table I on ``device`` (a default Pi when omitted)."""
    device = device or RaspberryPiEdgeServer(server_id=0)
    durations = device.duration_table(list(_E_VALUES), list(_N_VALUES))
    fit = fit_training_energy(durations, device.powers.training_w)
    return Table1Result(
        durations=durations,
        paper_durations=dict(constants.TABLE_I_DURATIONS),
        fit=fit,
    )
