"""Fig. 3 reproduction: the four-plateau power trace of one edge server.

The paper meters one Raspberry Pi across two consecutive rounds and
identifies four power steps: waiting (3.6 W), model downloading
(4.286 W), local training (5.553 W) and model uploading (5.015 W).
This module records the same trace on the simulated testbed, detects the
plateaus, matches them to phases, and reports measured-vs-paper powers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic_mnist import generate_synthetic_mnist
from repro.experiments.report import render_table
from repro.hardware.power_model import RoundPhase, StepPowers
from repro.hardware.prototype import HardwarePrototype, PrototypeConfig
from repro.hardware.trace import PowerTrace

__all__ = ["Fig3Result", "run_fig3"]

_PHASE_ORDER = (
    RoundPhase.WAITING,
    RoundPhase.DOWNLOADING,
    RoundPhase.TRAINING,
    RoundPhase.UPLOADING,
)


@dataclass(frozen=True)
class Fig3Result:
    """The recorded trace and its per-phase power summary.

    Attributes:
        trace: the metered two-round power trace.
        measured_powers: mean power per phase recovered from the trace's
            plateaus, phase -> watts.
        expected_powers: the paper's Fig. 3 values.
        n_rounds: number of rounds in the trace.
    """

    trace: PowerTrace
    measured_powers: dict[RoundPhase, float]
    expected_powers: dict[RoundPhase, float]
    n_rounds: int

    def max_power_error_w(self) -> float:
        """Largest |measured - paper| over the four phases, in watts."""
        return max(
            abs(self.measured_powers[p] - self.expected_powers[p])
            for p in _PHASE_ORDER
        )

    def report(self) -> str:
        rows = [
            [p.value, self.measured_powers[p], self.expected_powers[p]]
            for p in _PHASE_ORDER
        ]
        table = render_table(
            ["phase", "measured power (W)", "paper power (W)"],
            rows,
            title=f"Fig. 3 — power plateaus over {self.n_rounds} rounds",
        )
        summary = (
            f"trace: {len(self.trace)} samples @ {self.trace.sample_rate:.0f} Hz, "
            f"{self.trace.duration:.3f} s, {self.trace.energy():.3f} J"
        )
        return f"{table}\n{summary}"


def _assign_plateaus(
    plateaus: list[tuple[float, float, float]], powers: StepPowers
) -> dict[RoundPhase, float]:
    """Average plateau powers grouped by nearest expected phase power."""
    expected = {p: powers.power_for(p) for p in _PHASE_ORDER}
    sums: dict[RoundPhase, float] = {p: 0.0 for p in _PHASE_ORDER}
    weights: dict[RoundPhase, float] = {p: 0.0 for p in _PHASE_ORDER}
    for start, end, mean_power in plateaus:
        phase = min(_PHASE_ORDER, key=lambda p: abs(expected[p] - mean_power))
        duration = end - start
        sums[phase] += mean_power * duration
        weights[phase] += duration
    return {
        p: (sums[p] / weights[p] if weights[p] > 0 else float("nan"))
        for p in _PHASE_ORDER
    }


def run_fig3(
    epochs: int = 10,
    n_rounds: int = 2,
    n_servers: int = 4,
    samples_per_server: int = 500,
    seed: int = 0,
) -> Fig3Result:
    """Meter one simulated Pi over ``n_rounds`` rounds and segment the trace.

    A small testbed suffices — the trace concerns a single device.
    """
    train = generate_synthetic_mnist(n_servers * samples_per_server, seed=seed)
    test = generate_synthetic_mnist(200, seed=seed + 1)
    config = PrototypeConfig(n_servers=n_servers, seed=seed)
    prototype = HardwarePrototype(train, test, config)
    trace = prototype.record_power_trace(0, epochs=epochs, n_rounds=n_rounds)
    plateaus = trace.detect_plateaus(tolerance_w=0.3)
    measured = _assign_plateaus(plateaus, config.powers)
    expected = {p: config.powers.power_for(p) for p in _PHASE_ORDER}
    return Fig3Result(
        trace=trace,
        measured_powers=measured,
        expected_powers=expected,
        n_rounds=n_rounds,
    )
