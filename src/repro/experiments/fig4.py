"""Fig. 4 reproduction: convergence vs ``T`` for varying ``K`` and ``E``.

The paper trains multinomial logistic regression on MNIST and plots the
global loss and test accuracy against the number of global rounds:

* Fig. 4(a)/(b): ``E`` fixed at 40, ``K`` in {1, 5, 10, 20} — at a loose
  accuracy target K barely changes the required ``T``; at a strict
  target, larger ``K`` cuts ``T`` roughly linearly.
* Fig. 4(c)/(d): ``K`` fixed at 10, ``E`` in {1, 20, 40, 100} — the total
  number of local gradient epochs ``E x T`` needed for a target accuracy
  is *non-monotone* in ``E`` (5 600 at E=20, 3 600 at E=40, 6 000 at
  E=100 in the paper), proving an interior-optimal ``E`` exists.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.plots import Series, line_chart
from repro.experiments.report import render_table
from repro.fl.metrics import TrainingHistory
from repro.hardware.prototype import HardwarePrototype

__all__ = ["Fig4Result", "run_fig4"]

# The paper's swept values.
DEFAULT_K_VALUES = (1, 5, 10, 20)
DEFAULT_E_VALUES = (1, 20, 40, 100)
DEFAULT_FIXED_E = 40
DEFAULT_FIXED_K = 10


@dataclass(frozen=True)
class Fig4Result:
    """Histories and derived round counts for both sweeps.

    Attributes:
        fixed_e_histories: ``K -> history`` with ``E = fixed_e``.
        fixed_k_histories: ``E -> history`` with ``K = fixed_k``.
        fixed_e / fixed_k: the pinned parameter values.
        loose_target / strict_target: the two accuracy levels analysed.
    """

    fixed_e_histories: dict[int, TrainingHistory]
    fixed_k_histories: dict[int, TrainingHistory]
    fixed_e: int
    fixed_k: int
    loose_target: float
    strict_target: float

    # ----- Fig. 4(a)/(b): K sweep -------------------------------------
    def rounds_vs_k(self, target: float) -> dict[int, int | None]:
        """Required ``T`` per ``K`` at an accuracy target."""
        return {
            k: history.rounds_to_accuracy(target)
            for k, history in self.fixed_e_histories.items()
        }

    # ----- Fig. 4(c)/(d): E sweep -------------------------------------
    def rounds_vs_e(self, target: float) -> dict[int, int | None]:
        """Required ``T`` per ``E`` at an accuracy target."""
        return {
            e: history.rounds_to_accuracy(target)
            for e, history in self.fixed_k_histories.items()
        }

    def local_gradients_vs_e(self, target: float) -> dict[int, int | None]:
        """Total local gradient epochs ``E x T`` per ``E`` at a target.

        The non-monotonicity of these totals is the paper's evidence for
        an interior-optimal ``E``.
        """
        return {
            e: history.local_gradient_rounds_to_accuracy(target)
            for e, history in self.fixed_k_histories.items()
        }

    def report(self) -> str:
        sections = []
        rows_k = [
            [
                k,
                self.rounds_vs_k(self.loose_target)[k],
                self.rounds_vs_k(self.strict_target)[k],
                round(history.final_accuracy(), 4),
            ]
            for k, history in sorted(self.fixed_e_histories.items())
        ]
        sections.append(
            render_table(
                [
                    "K",
                    f"T @ acc {self.loose_target}",
                    f"T @ acc {self.strict_target}",
                    "final acc",
                ],
                rows_k,
                title=f"Fig. 4(a)/(b) — fixed E = {self.fixed_e}",
            )
        )
        rows_e = [
            [
                e,
                self.rounds_vs_e(self.strict_target)[e],
                self.local_gradients_vs_e(self.strict_target)[e],
                round(history.final_accuracy(), 4),
            ]
            for e, history in sorted(self.fixed_k_histories.items())
        ]
        sections.append(
            render_table(
                ["E", f"T @ acc {self.strict_target}", "E*T (local gradients)", "final acc"],
                rows_e,
                title=f"Fig. 4(c)/(d) — fixed K = {self.fixed_k}",
            )
        )
        return "\n\n".join(sections)

    def loss_chart(self, which: str = "fixed_k") -> str:
        """ASCII rendering of the loss curves (Fig. 4(a)/(c)).

        ``which`` selects the sweep: ``"fixed_e"`` (loss vs T per K) or
        ``"fixed_k"`` (loss vs T per E).
        """
        if which == "fixed_e":
            histories = self.fixed_e_histories
            prefix, pinned = "K", f"E={self.fixed_e}"
        elif which == "fixed_k":
            histories = self.fixed_k_histories
            prefix, pinned = "E", f"K={self.fixed_k}"
        else:
            raise ValueError(f"which must be 'fixed_e' or 'fixed_k'; got {which!r}")
        series = [
            Series(
                f"{prefix}={value}",
                [(t + 1, float(loss)) for t, loss in enumerate(history.losses)],
            )
            for value, history in sorted(histories.items())
        ]
        return line_chart(
            series,
            title=f"Fig. 4 — global loss vs T ({pinned})",
            x_label="T (global rounds)",
            y_label="loss",
        )

    def accuracy_chart(self, which: str = "fixed_k") -> str:
        """ASCII rendering of the accuracy curves (Fig. 4(b)/(d))."""
        if which == "fixed_e":
            histories = self.fixed_e_histories
            prefix, pinned = "K", f"E={self.fixed_e}"
        elif which == "fixed_k":
            histories = self.fixed_k_histories
            prefix, pinned = "E", f"K={self.fixed_k}"
        else:
            raise ValueError(f"which must be 'fixed_e' or 'fixed_k'; got {which!r}")
        series = [
            Series(
                f"{prefix}={value}",
                [(t + 1, float(acc)) for t, acc in enumerate(history.accuracies)],
            )
            for value, history in sorted(histories.items())
        ]
        return line_chart(
            series,
            title=f"Fig. 4 — test accuracy vs T ({pinned})",
            x_label="T (global rounds)",
            y_label="accuracy",
        )


def run_fig4(
    prototype: HardwarePrototype,
    k_values: tuple[int, ...] = DEFAULT_K_VALUES,
    e_values: tuple[int, ...] = DEFAULT_E_VALUES,
    fixed_e: int = DEFAULT_FIXED_E,
    fixed_k: int = DEFAULT_FIXED_K,
    max_rounds: int = 300,
    loose_target: float = 0.89,
    strict_target: float = 0.90,
) -> Fig4Result:
    """Run both convergence sweeps on the testbed.

    Runs train for the full ``max_rounds`` budget (no early stop) so the
    complete loss/accuracy curves are available, exactly like the figure.
    """
    if loose_target >= strict_target:
        raise ValueError(
            f"loose_target must be below strict_target; got "
            f"{loose_target} >= {strict_target}"
        )
    fixed_e_histories: dict[int, TrainingHistory] = {}
    for k in k_values:
        result = prototype.run(participants=k, epochs=fixed_e, n_rounds=max_rounds)
        fixed_e_histories[k] = result.history
    fixed_k_histories: dict[int, TrainingHistory] = {}
    for e in e_values:
        result = prototype.run(participants=fixed_k, epochs=e, n_rounds=max_rounds)
        fixed_k_histories[e] = result.history
    return Fig4Result(
        fixed_e_histories=fixed_e_histories,
        fixed_k_histories=fixed_k_histories,
        fixed_e=fixed_e,
        fixed_k=fixed_k,
        loose_target=loose_target,
        strict_target=strict_target,
    )
