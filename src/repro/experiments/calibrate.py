"""End-to-end calibration: from raw substrate to an optimizer instance.

The paper instantiates its optimizer from measurements: ``(c0, c1)`` from
the Table I timing grid, ``rho`` from the IoT radio, ``e^U`` from the
upload step, and ``(A0, A1, A2)`` from observed convergence.  This module
performs the same pipeline on the simulated testbed:

1. build datasets and a :class:`HardwarePrototype` at a chosen scale,
2. regenerate the Table-I grid on one device and least-squares fit
   ``(c0, c1)``,
3. run a handful of *pilot* FL runs at varied ``(K, E)`` and fit the
   convergence constants from their loss-gap curves,
4. estimate ``F(w*)`` by centralised full-batch gradient descent on the
   pooled data, and translate the target accuracy into a loss-gap target
   ``epsilon``.

The result, :class:`CalibratedSystem`, contains everything Figs. 4-6
need: the prototype (for "real traces") and a ready
:class:`EnergyObjective` factory (for the "theoretical bound" curves).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.calibration import (
    GapObservation,
    fit_convergence_constants,
    fit_training_energy,
)
from repro.core.convergence import ConvergenceBound
from repro.core.energy_model import EnergyParams
from repro.core.objective import EnergyObjective
from repro.core.planner import EnergyPlanner
from repro.data.dataset import Dataset
from repro.data.synthetic_mnist import load_synthetic_mnist
from repro.experiments.config import ExperimentScale
from repro.fl.model import LogisticRegressionModel
from repro.hardware.prototype import HardwarePrototype, PrototypeConfig
from repro.iot.network import IoTNetwork
from repro.net.messages import model_upload_message

__all__ = ["CalibratedSystem", "estimate_f_star", "calibrate_system"]

# (K, E) combinations for the pilot convergence runs.  They must vary K
# at fixed E (identifying A1) and E at fixed K over the range the
# optimizer will search (identifying A2), with the per-run required round
# count identifying A0.  Fractions are of the testbed size N.
_PILOT_FRACTIONS: tuple[tuple[float, int], ...] = (
    (0.05, 5),
    (0.5, 5),
    (1.0, 5),
    (0.05, 20),
    (0.5, 20),
    (1.0, 20),
    (0.05, 60),
    (0.5, 60),
)


def estimate_f_star(
    train: Dataset,
    scale: ExperimentScale,
    max_iterations: int = 2000,
) -> float:
    """Estimate the minimum loss ``F(w*)`` by centralised training.

    Minimises the pooled cross-entropy with L-BFGS; logistic regression
    is convex, so this converges to the global optimum far faster and
    tighter than plain gradient descent.  The tightness matters: the
    calibration fits *gaps* against this value, and an overestimated
    ``F(w*)`` produces spurious negative gaps late in training.
    """
    from scipy.optimize import minimize

    model = LogisticRegressionModel(scale.model_config())

    def loss_and_grad(flat: np.ndarray) -> tuple[float, np.ndarray]:
        model.set_parameters(flat)
        loss = model.loss(train.features, train.labels)
        grad = model.gradient_flat(train.features, train.labels)
        return loss, grad

    result = minimize(
        loss_and_grad,
        x0=np.zeros(model.config.n_parameters),
        jac=True,
        method="L-BFGS-B",
        options={"maxiter": max_iterations},
    )
    return float(result.fun)


@dataclass(frozen=True)
class CalibratedSystem:
    """Everything needed to run the evaluation at one scale.

    Attributes:
        scale: the experiment scale used.
        train / test: the datasets.
        prototype: the simulated testbed ("real traces" source).
        energy_params: fitted/derived per-server energy constants.
        bound: fitted convergence constants.
        f_star: estimated minimum loss.
        epsilon: loss-gap target equivalent to ``scale.target_accuracy``.
    """

    scale: ExperimentScale
    train: Dataset
    test: Dataset
    prototype: HardwarePrototype
    energy_params: EnergyParams
    bound: ConvergenceBound
    f_star: float
    epsilon: float

    def objective(self, epsilon: float | None = None) -> EnergyObjective:
        """The reduced energy objective at the calibrated constants."""
        return EnergyObjective(
            bound=self.bound,
            energy=self.energy_params,
            epsilon=self.epsilon if epsilon is None else epsilon,
            n_servers=self.scale.n_servers,
        )

    def planner(self) -> EnergyPlanner:
        """A ready :class:`EnergyPlanner` over the calibrated constants."""
        return EnergyPlanner(
            bound=self.bound,
            energy=self.energy_params,
            n_servers=self.scale.n_servers,
        )


def _pilot_combinations(n_servers: int) -> list[tuple[int, int]]:
    """Concrete pilot (K, E) pairs for a testbed of ``n_servers``."""
    combos = []
    for fraction, epochs in _PILOT_FRACTIONS:
        k = max(1, min(n_servers, int(round(fraction * n_servers))))
        combos.append((k, epochs))
    # De-duplicate while keeping order (tiny testbeds can collapse pairs).
    seen: set[tuple[int, int]] = set()
    unique = []
    for combo in combos:
        if combo not in seen:
            seen.add(combo)
            unique.append(combo)
    return unique


def calibrate_system(
    scale: ExperimentScale,
    iot_network: IoTNetwork | None = None,
    include_iot_energy: bool = False,
    noise_std: float = 0.25,
    observer=None,
    backend: str = "sequential",
) -> CalibratedSystem:
    """Run the full calibration pipeline at ``scale``.

    Args:
        scale: dataset/testbed sizes and the accuracy target.
        iot_network: optional IoT substrate; when given, its mean
            ``rho_k`` enters the energy constants (otherwise ``rho = 0``,
            matching the paper's prototype where data is pre-loaded).
        include_iot_energy: whether the *prototype* should also charge
            IoT collection energy per round.
        noise_std: synthetic-MNIST pixel-noise level.
        observer: optional :class:`repro.obs.Observer` attached to the
            built prototype — pilot runs and every later experiment on
            the returned system then emit full telemetry.
        backend: execution engine for all FL training on the built
            prototype (pilot runs included); see
            :class:`repro.fl.training.FederatedConfig`.
    """
    train, test = load_synthetic_mnist(
        n_train=scale.n_train,
        n_test=scale.n_test,
        seed=scale.seed,
        noise_std=noise_std,
    )
    config = PrototypeConfig(
        n_servers=scale.n_servers,
        model=scale.model_config(),
        sgd=scale.sgd_config(),
        include_iot=include_iot_energy,
        seed=scale.seed,
        backend=backend,
    )
    prototype = HardwarePrototype(
        train, test, config, iot_network=iot_network, observer=observer
    )

    # --- (c0, c1): regenerate the Table-I grid on device 0 and fit. ---
    device = prototype.devices[0]
    grid = device.duration_table([10, 20, 40], [100, 500, 1000, 2000])
    energy_fit = fit_training_energy(grid, device.powers.training_w)

    rho = iot_network.mean_rho() if iot_network is not None else 0.0
    upload_energy = device.upload_energy(model_upload_message(config.model))
    energy_params = EnergyParams(
        rho=rho,
        c0=energy_fit.c0,
        c1=energy_fit.c1,
        e_upload=upload_energy,
        n_samples=scale.samples_per_server,
    )

    # --- F(w*) and the loss-gap target. ---
    f_star = estimate_f_star(train, scale)

    # --- (A0, A1, A2) from accuracy-driven pilot runs. ---
    # The bound is calibrated the way the paper *uses* it: T*(K, E) must
    # predict the measured rounds-to-target.  Each pilot run trains until
    # the accuracy target (or the round budget) and contributes one
    # observation (T_hit, E, K, gap_at_hit); fitting eq. (10) on these
    # operating points makes the theoretical energy curve track the
    # measured one, which is exactly the comparison of Figs. 5-6.
    # Fitting on *full per-round loss curves* instead is tempting but
    # unsound here: early-round transients are not representable by the
    # three-term bound and leak into A1, predicting spurious
    # infeasibility at small K.
    observations: list[GapObservation] = []
    gaps_at_hit: list[float] = []
    for k, epochs in _pilot_combinations(scale.n_servers):
        result = prototype.run(
            participants=k,
            epochs=epochs,
            n_rounds=scale.max_rounds,
            target_accuracy=scale.target_accuracy,
        )
        history = result.history
        rounds_hit = history.rounds_to_accuracy(scale.target_accuracy)
        if rounds_hit is None:
            continue
        gap = history.records[rounds_hit - 1].train_loss - f_star
        if gap <= 0:
            continue
        observations.append(
            GapObservation(
                rounds=rounds_hit, epochs=epochs, participants=k, gap=gap
            )
        )
        gaps_at_hit.append(gap)
    if len(observations) < 3:
        raise RuntimeError(
            f"only {len(observations)} pilot runs reached accuracy "
            f"{scale.target_accuracy} within {scale.max_rounds} rounds; "
            "loosen the target or enlarge the budget for this scale"
        )
    bound = fit_convergence_constants(observations)

    # The loss-gap target equivalent to the accuracy target: the median
    # gap observed at the moment pilots crossed the accuracy threshold.
    epsilon = float(np.median(gaps_at_hit))
    # Ensure the target is reachable at K = N, E = 1 (otherwise the whole
    # optimisation problem is vacuous at this scale).
    floor = bound.asymptotic_gap(1, scale.n_servers)
    if epsilon <= floor:
        epsilon = floor * 1.5 + 1e-12

    return CalibratedSystem(
        scale=scale,
        train=train,
        test=test,
        prototype=prototype,
        energy_params=energy_params,
        bound=bound,
        f_star=f_star,
        epsilon=epsilon,
    )
