"""Command-line runner: regenerate any paper artifact with one command.

Usage (also available as ``python -m repro``)::

    python -m repro table1
    python -m repro fig3
    python -m repro fig4  --scale test
    python -m repro fig5  --scale tiny
    python -m repro fig6
    python -m repro plan  --scale test      # calibrate + print the plan
    python -m repro all   --scale tiny
    python -m repro campaign init --spec sweep.json
    python -m repro campaign run  --spec sweep.json --dir artifacts/
    python -m repro campaign report --dir artifacts/

Every subcommand shares one set of cross-cutting flags (factored into a
single parent parser): ``--telemetry out.jsonl`` attaches a
:class:`repro.obs.Observer` to the whole pipeline and dumps its
structured events (plus a trailing ``metrics.snapshot`` line) to the
file; ``--profile`` additionally enables hot-path timers; ``--backend``
selects the FL execution engine; ``--fault-plan`` and ``--quorum``
configure fault injection and resilience.  The per-figure subcommands
additionally take ``--scale`` (``tiny`` for smoke runs, ``test`` for
benchmark scale, ``paper`` for the full 60 000-sample setup).

The ``campaign`` subcommand drives :mod:`repro.campaign`: ``init``
writes an editable demo :class:`~repro.campaign.CampaignSpec` JSON,
``run`` executes a campaign into an artifact store (resuming — by
content-hashed unit key — if the store already holds completed units),
``status`` summarises and integrity-checks a store, ``report``
regenerates the Fig. 5/6 energy grids from stored artifacts without
re-running any training, ``doctor`` audits — with ``--repair``,
self-heals — a store damaged by crashes or torn writes, and
``migrate`` converts a store between index backends.  Stores open
through the repository API (:mod:`repro.campaign.repository`):
``--store-backend {json,sqlite}`` picks the index format for new
stores, existing stores auto-detect from disk.  Runs are supervised by
default (bounded retries, watchdog deadlines, quarantine;
``--no-supervise`` restores fail-fast).  For ``campaign``,
``--backend``, ``--fault-plan`` and ``--quorum`` act as grid-wide
overrides.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace
from pathlib import Path
from typing import Callable

from repro.experiments.calibrate import CalibratedSystem, calibrate_system
from repro.experiments.config import PAPER_SCALE, TEST_SCALE, ExperimentScale
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig5 import run_fig5
from repro.experiments.fig6 import run_fig6
from repro.experiments.report import render_table
from repro.experiments.table1 import run_table1
from repro.obs import Observer

__all__ = ["main", "SCALES", "common_options", "scale_options"]

TINY_SCALE = ExperimentScale(
    name="tiny",
    n_train=800,
    n_test=200,
    n_servers=8,
    max_rounds=80,
    target_accuracy=0.75,
)

SCALES: dict[str, ExperimentScale] = {
    "tiny": TINY_SCALE,
    "test": TEST_SCALE,
    "paper": PAPER_SCALE,
}

_CALIBRATION_CACHE: dict[str, CalibratedSystem] = {}

# Observer used by _system for the *next* calibration; set by main().
# Experiments sharing an already-calibrated system keep that system's
# observer — calibration happens once per scale per process.
_ACTIVE_OBSERVER: Observer | None = None

# Fault-plan path / quorum override for the resilience experiment; set
# by main() from --fault-plan / --quorum.
_FAULT_PLAN_PATH: str | None = None
_QUORUM: int | None = None

# Execution backend for all FL training; set by main() from --backend.
_BACKEND: str = "sequential"


def _system(scale: ExperimentScale) -> CalibratedSystem:
    """Calibrate once per scale per process (fig4/5/6 share the system)."""
    key = f"{scale.name}/{_BACKEND}"
    if key not in _CALIBRATION_CACHE:
        print(f"[calibrating at scale {scale.name!r} ...]", file=sys.stderr)
        _CALIBRATION_CACHE[key] = calibrate_system(
            scale, observer=_ACTIVE_OBSERVER, backend=_BACKEND
        )
    return _CALIBRATION_CACHE[key]


def _run_table1(scale: ExperimentScale) -> str:
    return run_table1().report()


def _run_fig3(scale: ExperimentScale) -> str:
    return run_fig3().report()


def _run_fig4(scale: ExperimentScale) -> str:
    system = _system(scale)
    result = run_fig4(
        system.prototype,
        max_rounds=min(scale.max_rounds * 2, 300),
        loose_target=scale.target_accuracy - 0.05,
        strict_target=scale.target_accuracy,
    )
    return result.report()


def _run_fig5(scale: ExperimentScale) -> str:
    return run_fig5(_system(scale), epochs=20).report()


def _run_fig6(scale: ExperimentScale) -> str:
    return run_fig6(_system(scale), participants=1).report()


def _run_sensitivity(scale: ExperimentScale) -> str:
    from repro.core.sensitivity import analyze_sensitivity

    system = _system(scale)
    report = analyze_sensitivity(system.objective())
    rows = [
        [
            r.constant,
            f"{r.factor:g}x",
            f"({r.participants},{r.epochs})",
            f"{100 * r.regret:.2f}%" if r.regret is not None else "inf",
        ]
        for r in report.results
    ]
    table = render_table(
        ["constant", "perturbation", "plan (K,E)", "regret"],
        rows,
        title=(
            "Plan regret under mis-calibration "
            f"(optimum {report.optimal_energy:.3f} J)"
        ),
    )
    return f"{table}\nworst regret: {100 * report.worst_regret():.2f}%"


def _run_frontier(scale: ExperimentScale) -> str:
    from repro.core.deadline import solve_with_deadline

    system = _system(scale)
    objective = system.objective()
    rows = []
    for deadline in (1, 2, 3, 5, 10, 25, 100, 1000):
        try:
            plan = solve_with_deadline(objective, deadline)
        except ValueError:
            rows.append([deadline, "-", "-", "-", "-", "infeasible"])
            continue
        rows.append(
            [
                deadline,
                plan.participants,
                plan.epochs,
                plan.rounds,
                f"{plan.energy:.3f}",
                "binding" if plan.binding else "slack",
            ]
        )
    return render_table(
        ["deadline T_max", "K", "E", "T", "energy (J)", "constraint"],
        rows,
        title="Energy-latency Pareto frontier",
    )


def _run_resilience(scale: ExperimentScale) -> str:
    """Degradation study: the same testbed with and without faults.

    Runs the calibrated prototype twice — failure-free, then under the
    fault plan from ``--fault-plan`` (default: a representative mixed
    plan of crashes, stragglers and bursty links) with the resilience
    policies enabled — and reports the cost of surviving: extra rounds,
    wasted joules, degraded rounds.
    """
    from repro.faults import (
        FaultPlan,
        ResilienceConfig,
        RetryPolicy,
        make_demo_plan,
    )

    system = _system(scale)
    prototype = system.prototype
    n = prototype.config.n_servers
    participants = max(2, n // 4)
    plan = (
        FaultPlan.load(_FAULT_PLAN_PATH)
        if _FAULT_PLAN_PATH is not None
        else make_demo_plan(n, seed=prototype.config.seed)
    )
    quorum = _QUORUM if _QUORUM is not None else max(1, participants // 2)
    resilience = ResilienceConfig(
        retry=RetryPolicy(max_retries=3),
        upload_timeout_s=30.0,
        min_quorum=quorum,
    )
    kwargs = dict(
        participants=participants,
        epochs=20,
        n_rounds=scale.max_rounds,
        target_accuracy=scale.target_accuracy,
    )
    baseline = prototype.run(**kwargs)
    faulted = prototype.run(**kwargs, fault_plan=plan, resilience=resilience)
    rows = []
    for label, result in (("failure-free", baseline), ("faulted", faulted)):
        reached = result.history.rounds_to_accuracy(scale.target_accuracy)
        rows.append(
            [
                label,
                result.rounds,
                reached if reached is not None else "-",
                result.degraded_rounds,
                f"{result.total_energy_j:.2f}",
                f"{result.wasted_energy_j:.2f}",
                f"{100 * result.wasted_fraction:.1f}%",
                f"{result.history.final_accuracy():.3f}",
            ]
        )
    table = render_table(
        [
            "run",
            "rounds",
            "T@target",
            "degraded",
            "energy (J)",
            "wasted (J)",
            "wasted %",
            "final acc",
        ],
        rows,
        title=(
            f"Resilience under faults ({len(plan)} declared, "
            f"quorum {quorum}, target {scale.target_accuracy:.0%})"
        ),
    )
    overhead = faulted.total_energy_j / baseline.total_energy_j - 1.0
    return (
        f"{table}\n"
        f"energy overhead of surviving the plan: {100 * overhead:+.1f}%"
    )


def _run_plan(scale: ExperimentScale) -> str:
    system = _system(scale)
    plan = system.planner().plan(system.epsilon)
    constants = render_table(
        ["constant", "value"],
        [
            ["A0", f"{system.bound.a0:.4f}"],
            ["A1", f"{system.bound.a1:.6f}"],
            ["A2", f"{system.bound.a2:.3e}"],
            ["c0 (J/sample-epoch)", f"{system.energy_params.c0:.3e}"],
            ["c1 (J/epoch)", f"{system.energy_params.c1:.3e}"],
            ["e_upload (J)", f"{system.energy_params.e_upload:.4f}"],
            ["epsilon (loss gap)", f"{system.epsilon:.4f}"],
            ["F(w*)", f"{system.f_star:.4f}"],
        ],
        title=f"Calibrated constants at scale {scale.name!r}",
    )
    return constants + "\n\n" + plan.describe()


EXPERIMENTS: dict[str, Callable[[ExperimentScale], str]] = {
    "table1": _run_table1,
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "plan": _run_plan,
    "resilience": _run_resilience,
    "sensitivity": _run_sensitivity,
    "frontier": _run_frontier,
}


def common_options() -> argparse.ArgumentParser:
    """The shared parent parser: flags every subcommand accepts.

    This is the single definition of the cross-cutting
    ``--telemetry/--profile/--backend/--fault-plan/--quorum`` surface;
    subcommands inherit it via ``parents=[...]`` instead of each
    re-declaring (and drifting from) its own copies.
    """
    parser = argparse.ArgumentParser(add_help=False)
    parser.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help=(
            "dump structured telemetry (JSONL events + metrics snapshot) "
            "of the whole run to PATH"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="with --telemetry: also enable hot-path timers",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help=(
            "export final metrics as OpenMetrics/Prometheus text "
            "exposition to PATH (implies telemetry collection)"
        ),
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help=(
            "export recorded spans as Chrome trace-event JSON to PATH, "
            "loadable in chrome://tracing or Perfetto (implies "
            "telemetry collection)"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=("sequential", "batched", "pool", "population", "auto"),
        default=None,
        help=(
            "execution engine for FL training: 'sequential' (reference, "
            "the default), 'batched' (vectorized full-batch cohort "
            "training), 'pool' (process pool over shared-memory "
            "datasets), 'population' (struct-of-arrays cohort training "
            "for large testbeds), or 'auto' (data-driven selection from "
            "the workload and the measured break-even table); results "
            "are equivalent across backends.  For 'campaign run' this "
            "overrides every unit's backend"
        ),
    )
    parser.add_argument(
        "--population-dtype",
        choices=("float64", "float32"),
        default=None,
        help=(
            "compute dtype for the 'population' backend: 'float64' "
            "(default, matches the reference bit-for-bit at equal op "
            "order) or 'float32' (half the memory at a ~1e-6 relative "
            "parameter delta; see BENCH_population.json).  For "
            "'campaign run' this overrides every unit's dtype"
        ),
    )
    parser.add_argument(
        "--fault-plan",
        metavar="PATH",
        default=None,
        help=(
            "JSON fault plan (see repro.faults.FaultPlan.save) for the "
            "'resilience' experiment (default: a generated mixed plan of "
            "crashes, stragglers and bursty links); for 'campaign run' "
            "it is injected into every unit"
        ),
    )
    parser.add_argument(
        "--quorum",
        type=int,
        default=None,
        metavar="Q",
        help=(
            "minimum survivor updates per round for the 'resilience' "
            "experiment (default: half the participants) and a grid-wide "
            "override for 'campaign run'; rounds below the quorum "
            "degrade gracefully"
        ),
    )
    return parser


def scale_options() -> argparse.ArgumentParser:
    """Parent parser for the per-figure subcommands' ``--scale`` flag."""
    parser = argparse.ArgumentParser(add_help=False)
    parser.add_argument(
        "--scale",
        choices=sorted(SCALES),
        default="tiny",
        help="dataset/testbed size (default: tiny)",
    )
    return parser


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Regenerate the EE-FEI paper's tables and figures, or run "
            "scenario campaigns over them."
        ),
    )
    common = common_options()
    scaled = scale_options()
    subparsers = parser.add_subparsers(
        dest="experiment",
        required=True,
        metavar="command",
        help=(
            "a paper artifact to regenerate ('all' runs every one), or "
            "'campaign' for declarative sweeps"
        ),
    )
    for name in sorted(EXPERIMENTS) + ["all"]:
        subparsers.add_parser(name, parents=[scaled, common])
    campaign = subparsers.add_parser(
        "campaign",
        parents=[common],
        help="declare/execute/resume/report scenario campaigns",
        description=(
            "Campaign orchestration over the repro.campaign subsystem: "
            "'init' writes an editable demo CampaignSpec JSON, 'run' "
            "executes (or resumes) a campaign into --dir under "
            "supervision (bounded retries, watchdog deadlines, "
            "quarantine), 'status' summarises and integrity-checks the "
            "store, 'report' regenerates the energy tables from stored "
            "artifacts without re-running training, 'doctor' "
            "audits (with --repair, self-heals) a store damaged by "
            "crashes or torn writes, and 'migrate' converts a store "
            "between index backends (--store-backend into --out)."
        ),
    )
    campaign.add_argument(
        "action",
        choices=("init", "run", "status", "report", "doctor", "migrate"),
        help="campaign operation",
    )
    campaign.add_argument(
        "--store-backend",
        choices=("json", "sqlite"),
        default=None,
        metavar="BACKEND",
        help=(
            "store index backend: 'json' (one manifest.json document; "
            "the compatibility default) or 'sqlite' (indexed WAL-mode "
            "manifest.db; use for large grids).  Existing stores "
            "auto-detect from disk — passing a conflicting backend is "
            "an error, except for 'doctor --repair', where it names "
            "the index to rebuild, and 'migrate', where it names the "
            "destination format (required there)"
        ),
    )
    campaign.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help=(
            "for 'migrate': destination directory (must not already "
            "contain a store; the source in --dir is left untouched)"
        ),
    )
    campaign.add_argument(
        "--spec",
        metavar="PATH",
        default=None,
        help=(
            "CampaignSpec JSON: the output target for 'init', the input "
            "for 'run' (optional when --dir already holds a campaign)"
        ),
    )
    campaign.add_argument(
        "--dir",
        dest="store_dir",
        metavar="DIR",
        default="campaign_artifacts",
        help="artifact-store directory (default: campaign_artifacts)",
    )
    campaign.add_argument(
        "--max-units",
        type=int,
        default=None,
        metavar="N",
        help=(
            "stop (checkpointed) after training N units; a later 'run' "
            "resumes after them"
        ),
    )
    campaign.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="J",
        help=(
            "worker processes for 'run' (default 1 = sequential); units "
            "are scheduled longest-first and artifacts are byte-identical "
            "to a sequential run"
        ),
    )
    campaign.add_argument(
        "--follow",
        action="store_true",
        help=(
            "for 'status': refresh the live per-unit status (round "
            "progress streamed from worker telemetry spools, plus an "
            "ETA) until the campaign finishes"
        ),
    )
    campaign.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="S",
        help="refresh period in seconds for 'status --follow' (default 2)",
    )
    campaign.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help=(
            "for 'run': retry a failed unit up to N times before "
            "quarantining it (default: supervision default)"
        ),
    )
    campaign.add_argument(
        "--unit-timeout",
        type=float,
        default=None,
        metavar="S",
        help=(
            "for 'run': hard per-unit deadline in seconds; overrides the "
            "cost-model deadline the watchdog derives from observed "
            "throughput"
        ),
    )
    campaign.add_argument(
        "--no-supervise",
        action="store_true",
        help=(
            "for 'run': disable retries/watchdog/quarantine and fail "
            "fast on the first unit error (the pre-supervision "
            "behaviour)"
        ),
    )
    campaign.add_argument(
        "--retry-quarantined",
        action="store_true",
        help=(
            "for 'run': clear existing quarantine records first, giving "
            "previously given-up units a fresh retry budget"
        ),
    )
    campaign.add_argument(
        "--chaos-plan",
        metavar="PATH",
        default=None,
        help=(
            "for 'run': JSON saboteur plan (repro.faults.ChaosPlan) "
            "injected into unit workers — fault-injection testing only"
        ),
    )
    campaign.add_argument(
        "--repair",
        action="store_true",
        help=(
            "for 'doctor': quarantine corrupt artifacts, adopt orphan "
            "unit directories, and rebuild the manifest instead of just "
            "reporting"
        ),
    )
    return parser


def _wants_observer(args: argparse.Namespace) -> bool:
    """Whether any flag asks for telemetry collection this run."""
    return bool(args.telemetry or args.metrics_out or args.trace_out)


def _export_observer(observer: Observer, args: argparse.Namespace) -> None:
    """Write every requested telemetry export format."""
    if args.telemetry:
        observer.dump_jsonl(args.telemetry)
        print(
            f"[telemetry: {len(observer.events)} events -> {args.telemetry}]",
            file=sys.stderr,
        )
    if args.metrics_out:
        from repro.obs import write_openmetrics

        write_openmetrics(observer.metrics, args.metrics_out)
        print(
            f"[metrics: OpenMetrics text -> {args.metrics_out}]",
            file=sys.stderr,
        )
    if args.trace_out:
        from repro.obs import write_chrome_trace

        write_chrome_trace(observer.tracer, args.trace_out)
        print(
            f"[trace: Chrome trace events -> {args.trace_out}]",
            file=sys.stderr,
        )


def _follow_status(store, interval: float) -> int:
    """``campaign status --follow``: refresh until the campaign finishes.

    One :class:`~repro.campaign.CampaignStatusMonitor` lives across the
    whole follow: the campaign grid and every finished unit's status
    are computed once and reused, so each tick costs work proportional
    to the units still moving — not a full re-parse of the store.  The
    poll reads the store and the worker telemetry spools, so this works
    from any process on the machine — including while a separate
    ``campaign run --jobs N`` is training.
    """
    from repro.campaign import CampaignStatusMonitor

    monitor = CampaignStatusMonitor(store)
    try:
        while True:
            status = monitor.refresh()
            print(status.render())
            if status.finished:
                break
            print()
            time.sleep(max(0.1, interval))
    except KeyboardInterrupt:
        print()
    return 0


def _run_campaign(args: argparse.Namespace) -> int:
    """Handle the ``campaign`` subcommand (init/run/status/report/doctor)."""
    from repro.campaign import (
        DEFAULT_SUPERVISION,
        ArtifactStore,
        CampaignReport,
        CampaignRunner,
        CampaignSpec,
        CampaignStatus,
        StoreError,
        campaign_telemetry,
        make_demo_campaign,
    )
    from repro.campaign import migrate_store
    from repro.faults import ChaosPlan, FaultPlan

    if args.action == "init":
        if args.spec is None:
            print("campaign init requires --spec PATH", file=sys.stderr)
            return 2
        make_demo_campaign().save(args.spec)
        print(f"wrote demo campaign spec to {args.spec} (edit, then run)")
        return 0

    if args.action == "migrate":
        if args.out is None or args.store_backend is None:
            print(
                "campaign migrate requires --out DIR and "
                "--store-backend {json,sqlite}",
                file=sys.stderr,
            )
            return 2
        try:
            result = migrate_store(
                args.store_dir, args.out, args.store_backend
            )
        except StoreError as error:
            print(f"migrate failed: {error}", file=sys.stderr)
            return 2
        print(result.render())
        return 0

    try:
        store = ArtifactStore(args.store_dir, backend=args.store_backend)
    except StoreError as error:
        print(str(error), file=sys.stderr)
        return 2

    if args.action == "doctor":
        try:
            store.campaign()
        except StoreError as error:
            print(f"no campaign store: {error}", file=sys.stderr)
            return 2
        report = store.doctor(repair=args.repair)
        print(report.render())
        return 0 if report.healthy else 1

    if args.action == "status":
        try:
            campaign = store.campaign()
        except StoreError as error:
            print(f"no campaign store: {error}", file=sys.stderr)
            return 2
        if args.follow:
            return _follow_status(store, args.interval)
        completed = store.completed_keys()
        health = store.verify()
        print(
            f"campaign {campaign.name!r} (key {campaign.key()}): "
            f"{len(completed)}/{len(campaign)} units complete "
            f"[{store.backend_name} store]"
        )
        status = CampaignStatus.collect(store)
        print(status.render_summary())
        if not health.healthy:
            # Same StoreHealthReport rendering `campaign doctor` uses,
            # on stderr because it is an operator alarm, not status.
            print(health.render(), file=sys.stderr)
        # Non-zero for anything an operator must look at: integrity
        # problems, failed units, or quarantined units.
        return 1 if not health.healthy or status.troubled else 0

    if args.action == "report":
        try:
            report = CampaignReport.from_store(store)
        except StoreError as error:
            print(f"no campaign store: {error}", file=sys.stderr)
            return 2
        print(report.render())
        telemetry = campaign_telemetry(store)
        if len(telemetry):
            print()
            print(telemetry.render_text())
            for problem in telemetry.reconcile():
                print(f"telemetry: {problem}", file=sys.stderr)
        return 0

    # action == "run"
    if args.spec is not None:
        campaign = CampaignSpec.load(args.spec)
    else:
        try:
            campaign = store.campaign()
        except StoreError:
            print(
                "campaign run needs --spec PATH (or --dir pointing at an "
                "existing campaign store)",
                file=sys.stderr,
            )
            return 2
    observer = (
        Observer(profile_hot_paths=args.profile)
        if _wants_observer(args)
        else None
    )
    fault_plan = (
        FaultPlan.load(args.fault_plan) if args.fault_plan is not None else None
    )
    chaos = None
    if args.chaos_plan is not None:
        chaos = ChaosPlan.from_json(
            Path(args.chaos_plan).read_text(encoding="utf-8")
        )
    if args.no_supervise:
        supervision = None
    else:
        supervision = DEFAULT_SUPERVISION
        if args.retries is not None:
            supervision = replace(
                supervision,
                retry=replace(supervision.retry, max_retries=args.retries),
            )
        if args.unit_timeout is not None:
            supervision = replace(
                supervision, unit_timeout_s=args.unit_timeout
            )
    try:
        runner = CampaignRunner(
            campaign,
            store,
            observer=observer,
            backend_override=args.backend,
            fault_plan_override=fault_plan,
            quorum_override=args.quorum,
            chaos=chaos,
            population_dtype_override=args.population_dtype,
        )
    except StoreError as error:
        print(str(error), file=sys.stderr)
        return 2
    summary = runner.run(
        max_units=args.max_units,
        jobs=args.jobs,
        supervision=supervision,
        retry_quarantined=args.retry_quarantined,
    )
    if observer is not None:
        _export_observer(observer, args)
    print(
        f"campaign {runner.campaign.name!r}: {summary.executed} units run, "
        f"{summary.skipped} resumed from artifacts"
        + (
            f", {summary.quarantined} QUARANTINED"
            if summary.quarantined
            else ""
        )
        + (", interrupted" if summary.interrupted else "")
    )
    if not summary.interrupted:
        print()
        print(CampaignReport.from_store(store).render())
    else:
        print(
            f"re-run `python -m repro campaign run --dir {args.store_dir}` "
            "to resume"
        )
    if summary.degraded:
        print(
            "campaign completed DEGRADED: quarantined units have failure "
            f"records under {store.quarantine_dir}/; re-run with "
            "--retry-quarantined to grant a fresh budget",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    global _ACTIVE_OBSERVER, _FAULT_PLAN_PATH, _QUORUM, _BACKEND
    args = build_parser().parse_args(argv)
    if args.quorum is not None and args.quorum < 1:
        print(f"--quorum must be >= 1; got {args.quorum}", file=sys.stderr)
        return 2
    if args.experiment == "campaign":
        return _run_campaign(args)
    scale = SCALES[args.scale]
    observer = (
        Observer(profile_hot_paths=args.profile)
        if _wants_observer(args)
        else None
    )
    _ACTIVE_OBSERVER = observer
    _FAULT_PLAN_PATH = args.fault_plan
    _BACKEND = args.backend or "sequential"
    _QUORUM = args.quorum
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    try:
        for name in names:
            started = time.perf_counter()
            if observer is not None:
                observer.emit(
                    "experiment.start", experiment=name, scale=scale.name
                )
                with observer.span("experiment", experiment=name):
                    report = EXPERIMENTS[name](scale)
            else:
                report = EXPERIMENTS[name](scale)
            elapsed = time.perf_counter() - started
            if observer is not None:
                observer.emit(
                    "experiment.end",
                    experiment=name,
                    scale=scale.name,
                    duration_s=elapsed,
                )
                observer.histogram("experiment.duration_s").observe(elapsed)
            print("=" * 64)
            print(f"{name} (scale {scale.name!r}, {elapsed:.1f}s)")
            print("=" * 64)
            print(report)
            print()
    finally:
        _ACTIVE_OBSERVER = None
        _FAULT_PLAN_PATH = None
        _QUORUM = None
        _BACKEND = "sequential"
        if observer is not None:
            _export_observer(observer, args)
            if args.telemetry:
                print(observer.metrics.render_text(), file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
