"""Experiment harness: one module per table/figure of the paper's §VI."""

from repro.experiments.calibrate import (
    CalibratedSystem,
    calibrate_system,
    estimate_f_star,
)
from repro.experiments.config import (
    PAPER_SCALE,
    TEST_SCALE,
    ExperimentScale,
    table_ii_rows,
)
from repro.experiments.fig3 import Fig3Result, run_fig3
from repro.experiments.fig4 import Fig4Result, run_fig4
from repro.experiments.fig5 import Fig5Result, run_fig5
from repro.experiments.fig6 import Fig6Result, run_fig6
from repro.experiments.plots import Series, line_chart
from repro.experiments.report import format_percent, render_series, render_table
from repro.experiments.stats import SeedSummary, repeat_over_seeds, summarize
from repro.experiments.table1 import Table1Result, run_table1

__all__ = [
    "CalibratedSystem",
    "calibrate_system",
    "estimate_f_star",
    "PAPER_SCALE",
    "TEST_SCALE",
    "ExperimentScale",
    "table_ii_rows",
    "Fig3Result",
    "run_fig3",
    "Fig4Result",
    "run_fig4",
    "Fig5Result",
    "run_fig5",
    "Fig6Result",
    "run_fig6",
    "Series",
    "line_chart",
    "SeedSummary",
    "repeat_over_seeds",
    "summarize",
    "format_percent",
    "render_series",
    "render_table",
    "Table1Result",
    "run_table1",
]
